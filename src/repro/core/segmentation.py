"""Detail-based segmentation: decide which objects get a dedicated NeRF.

The segmentation module (§III-A) runs object detection on every training
image, scores each detected object by the *maximum* detail frequency it
exhibits across views, and assigns a dedicated NeRF to every object whose
maximum frequency reaches a threshold.  The remaining low-frequency objects
are represented together by a single joint NeRF.  For each dedicated object
the training images are cropped to the object and enlarged back to full
resolution (interpolation scaling), lowering the detail frequency the
dedicated network has to learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.frequency import detail_frequency
from repro.detection.detector import OracleDetector
from repro.detection.interpolation import crop_and_enlarge
from repro.detection.masks import merge_masks


@dataclass
class SubScene:
    """One sub-scene produced by segmentation (dedicated object or joint group).

    Attributes:
        name: sub-scene name (the object's instance name, or ``"joint"``).
        instance_ids: scene instance ids represented by this sub-scene.
        dedicated: true when the sub-scene holds a single high-frequency
            object with its own NeRF; false for the shared joint NeRF.
        max_frequency: the maximum detail frequency observed for this
            sub-scene's content across training views.
        pixel_counts: per-training-view pixel footprint of the content in
            the *original* images.
        training_pixel_counts: per-view pixel footprint in the images the
            sub-scene's NeRF is actually trained on (enlarged crops for
            dedicated objects, the originals for the joint NeRF).
        enlargement_scales: per-view linear enlargement factors (1.0 for the
            joint sub-scene).
        training_images: the dedicated training images, populated only when
            the segmenter is asked to keep them.
    """

    name: str
    instance_ids: list
    dedicated: bool
    max_frequency: float
    pixel_counts: list = field(default_factory=list)
    training_pixel_counts: list = field(default_factory=list)
    enlargement_scales: list = field(default_factory=list)
    training_images: list = field(default_factory=list)

    @property
    def num_views(self) -> int:
        return len(self.pixel_counts)

    @property
    def mean_enlargement(self) -> float:
        scales = [scale for scale in self.enlargement_scales if scale > 0]
        return float(np.mean(scales)) if scales else 1.0


@dataclass
class SegmentationResult:
    """Full output of the segmentation module."""

    sub_scenes: list
    max_frequencies: dict
    threshold: float
    detections_per_view: list

    @property
    def dedicated(self) -> list:
        return [sub for sub in self.sub_scenes if sub.dedicated]

    @property
    def joint(self) -> "SubScene | None":
        for sub in self.sub_scenes:
            if not sub.dedicated:
                return sub
        return None

    def describe(self) -> dict:
        return {
            "threshold": self.threshold,
            "num_sub_scenes": len(self.sub_scenes),
            "dedicated": [sub.name for sub in self.dedicated],
            "joint_members": self.joint.instance_ids if self.joint else [],
            "max_frequencies": dict(self.max_frequencies),
        }


class DetailBasedSegmenter:
    """The detail-based segmentation module.

    Args:
        detector: object detector producing per-view masks; defaults to the
            oracle detector (see :mod:`repro.detection`).
        frequency_threshold: objects whose maximum detail frequency reaches
            this value get a dedicated NeRF.  When omitted, the threshold is
            set to the lowest maximum frequency among all detected objects —
            the paper's evaluation setting, which gives every object its own
            network and maximises the number of decision variables.
        energy_quantile: quantile used by the frequency measure.
        keep_training_images: store the enlarged per-object training images
            on the sub-scenes (off by default to save memory).
        min_pixels: ignore detections smaller than this.
    """

    def __init__(
        self,
        detector=None,
        frequency_threshold: "float | None" = None,
        energy_quantile: float = 0.90,
        keep_training_images: bool = False,
        min_pixels: int = 16,
    ) -> None:
        self.detector = detector or OracleDetector()
        self.frequency_threshold = frequency_threshold
        self.energy_quantile = float(energy_quantile)
        self.keep_training_images = bool(keep_training_images)
        self.min_pixels = int(min_pixels)

    def segment(self, dataset) -> SegmentationResult:
        """Segment a dataset into dedicated and joint sub-scenes."""
        views = dataset.train_views
        if not views:
            raise ValueError("dataset has no training views")

        detections_per_view = [self.detector.detect(view) for view in views]

        # Collect, per instance, its mask and detail frequency in every view.
        per_instance_masks: dict = {}
        per_instance_frequencies: dict = {}
        for view_index, (view, detections) in enumerate(zip(views, detections_per_view)):
            for detection in detections:
                if detection.pixel_count < self.min_pixels:
                    continue
                masks = per_instance_masks.setdefault(
                    detection.instance_id, [None] * len(views)
                )
                masks[view_index] = detection.mask
                frequency = detail_frequency(
                    view.rgb, detection.mask, energy_quantile=self.energy_quantile
                )
                per_instance_frequencies.setdefault(detection.instance_id, []).append(
                    frequency
                )

        if not per_instance_masks:
            raise ValueError("no objects detected in any training view")

        max_frequencies = {
            instance_id: float(max(freqs))
            for instance_id, freqs in per_instance_frequencies.items()
        }
        threshold = (
            self.frequency_threshold
            if self.frequency_threshold is not None
            else min(max_frequencies.values())
        )

        dedicated_ids = [
            instance_id
            for instance_id, frequency in sorted(max_frequencies.items())
            if frequency >= threshold
        ]
        joint_ids = [
            instance_id
            for instance_id in sorted(max_frequencies)
            if instance_id not in set(dedicated_ids)
        ]

        sub_scenes = [
            self._build_dedicated(dataset, instance_id, per_instance_masks[instance_id],
                                  max_frequencies[instance_id], views)
            for instance_id in dedicated_ids
        ]
        if joint_ids:
            sub_scenes.append(
                self._build_joint(joint_ids, per_instance_masks, max_frequencies, views)
            )

        return SegmentationResult(
            sub_scenes=sub_scenes,
            max_frequencies=max_frequencies,
            threshold=float(threshold),
            detections_per_view=detections_per_view,
        )

    # -- helpers -------------------------------------------------------------

    def _instance_name(self, dataset, instance_id: int) -> str:
        if instance_id >= 0:
            try:
                return dataset.scene.by_id(instance_id).instance_name
            except (KeyError, AttributeError):
                pass
        return f"region_{abs(instance_id)}"

    def _build_dedicated(
        self, dataset, instance_id: int, masks: list, max_frequency: float, views: list
    ) -> SubScene:
        pixel_counts = []
        training_pixel_counts = []
        scales = []
        training_images = []
        for view, mask in zip(views, masks):
            if mask is None or not mask.any():
                pixel_counts.append(0)
                training_pixel_counts.append(0)
                scales.append(0.0)
                continue
            count = int(mask.sum())
            pixel_counts.append(count)
            crop = crop_and_enlarge(view.rgb, mask)
            scales.append(crop.scale_factor)
            training_pixel_counts.append(int(crop.mask.sum()))
            if self.keep_training_images:
                training_images.append(crop.image)
        return SubScene(
            name=self._instance_name(dataset, instance_id),
            instance_ids=[int(instance_id)],
            dedicated=True,
            max_frequency=float(max_frequency),
            pixel_counts=pixel_counts,
            training_pixel_counts=training_pixel_counts,
            enlargement_scales=scales,
            training_images=training_images,
        )

    def _build_joint(
        self, joint_ids: list, per_instance_masks: dict, max_frequencies: dict, views: list
    ) -> SubScene:
        pixel_counts = []
        for view_index in range(len(views)):
            masks = [
                per_instance_masks[instance_id][view_index]
                for instance_id in joint_ids
                if per_instance_masks[instance_id][view_index] is not None
            ]
            pixel_counts.append(int(merge_masks(masks).sum()) if masks else 0)
        return SubScene(
            name="joint",
            instance_ids=[int(instance_id) for instance_id in joint_ids],
            dedicated=False,
            max_frequency=float(max(max_frequencies[i] for i in joint_ids)),
            pixel_counts=pixel_counts,
            training_pixel_counts=list(pixel_counts),
            enlargement_scales=[1.0] * len(views),
        )
