"""Configuration selection as a multiple-choice knapsack (MCK) problem.

Given one profile per segmented object, the selector picks exactly one
configuration per object so that the summed predicted quality is maximised
while the summed predicted size stays within the device budget ``H``
(equation (2) of the paper).  The problem is NP-hard (it is an MCK), and the
paper solves it with a pseudo-polynomial dynamic program (Algorithm 1) after
filtering out configurations that cannot be part of any feasible solution.

Two solvers are provided:

* :class:`NeRFlexDPSelector` — Algorithm 1: per-object feasibility filter
  ``r_i`` followed by the capacity-indexed dynamic program;
* :class:`ExactMCKSelector` — a textbook MCK dynamic program without the
  filter, used as a correctness reference in the tests.

Sizes are discretised to ``size_step_mb`` units (1 MB by default), matching
the paper's ``O(n * h * c)`` complexity analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config_space import Configuration
from repro.core.profiler import ObjectProfile


@dataclass
class SelectionResult:
    """The outcome of a configuration-selection run.

    Attributes:
        method: name of the selector that produced the result.
        budget_mb: the size limit ``H`` the selection was made for.
        assignments: mapping object name -> selected :class:`Configuration`.
        predicted_quality / predicted_size_mb: per-object model predictions
            under the selected configuration.
        feasible: whether the predicted total size fits the budget.
    """

    method: str
    budget_mb: float
    assignments: dict
    predicted_quality: dict = field(default_factory=dict)
    predicted_size_mb: dict = field(default_factory=dict)
    feasible: bool = True

    @property
    def total_predicted_quality(self) -> float:
        return float(sum(self.predicted_quality.values()))

    @property
    def total_predicted_size_mb(self) -> float:
        return float(sum(self.predicted_size_mb.values()))

    @property
    def mean_predicted_quality(self) -> float:
        if not self.predicted_quality:
            return 0.0
        return self.total_predicted_quality / len(self.predicted_quality)

    def describe(self) -> dict:
        return {
            "method": self.method,
            "budget_mb": self.budget_mb,
            "feasible": self.feasible,
            "total_predicted_size_mb": self.total_predicted_size_mb,
            "total_predicted_quality": self.total_predicted_quality,
            "assignments": {
                name: config.as_tuple() for name, config in self.assignments.items()
            },
        }


def build_result(
    method: str, profiles: list, assignments: dict, budget_mb: float
) -> SelectionResult:
    """Assemble a :class:`SelectionResult` from per-object assignments."""
    predicted_quality = {}
    predicted_size = {}
    for profile in profiles:
        config = assignments[profile.name]
        predicted_quality[profile.name] = profile.predict_quality(config)
        predicted_size[profile.name] = profile.predict_size(config)
    total_size = sum(predicted_size.values())
    return SelectionResult(
        method=method,
        budget_mb=float(budget_mb),
        assignments=dict(assignments),
        predicted_quality=predicted_quality,
        predicted_size_mb=predicted_size,
        feasible=bool(total_size <= budget_mb + 1e-9),
    )


def _fallback_min_assignments(profiles: list) -> dict:
    """Every object at its cheapest configuration (best effort when the
    budget cannot accommodate any feasible selection)."""
    return {profile.name: profile.config_space.min_config for profile in profiles}


class _BaseDPSelector:
    """Shared machinery of the capacity-indexed MCK dynamic programs."""

    method_name = "dp"

    def __init__(self, size_step_mb: float = 1.0) -> None:
        if size_step_mb <= 0:
            raise ValueError("size_step_mb must be positive")
        self.size_step_mb = float(size_step_mb)

    def _effective_step(self, budget_mb: float) -> float:
        """Size-unit granularity actually used for a given budget.

        The nominal step (1 MB, matching the paper's pseudo-polynomial
        analysis) is refined automatically for small budgets so the
        discretisation error stays below ~0.4% of the budget.
        """
        return min(self.size_step_mb, budget_mb / 256.0)

    @staticmethod
    def _quantize(size_mb: float, step: float) -> int:
        """Conservative (ceiling) discretisation of a size in MB."""
        return int(math.ceil(max(size_mb, 0.0) / step - 1e-9))

    def _candidate_configs(
        self, profile: ObjectProfile, capacity: int, reserve: int, step: float
    ) -> list:
        """Configurations of one object admitted into the DP.

        ``reserve`` is the number of size units that must be left for the
        other objects' cheapest configurations (the paper's ``r_i`` filter);
        the plain MCK solver passes ``reserve = 0``.  Candidate quality is
        the profile's detail-weighted objective (see
        :attr:`~repro.core.profiler.ObjectProfile.detail_weight`).
        """
        admitted = []
        for config in profile.config_space:
            size_units = self._quantize(profile.predict_size(config), step)
            if size_units > capacity - reserve:
                continue
            admitted.append((config, size_units, profile.objective_quality(config)))
        return admitted

    def _solve(self, profiles: list, budget_mb: float, use_reserve_filter: bool) -> dict:
        step = self._effective_step(budget_mb)
        capacity = int(math.floor(budget_mb / step + 1e-9))
        min_units = [
            min(
                self._quantize(profile.predict_size(config), step)
                for config in profile.config_space
            )
            for profile in profiles
        ]
        total_min = sum(min_units)

        negative_infinity = -np.inf
        previous = np.zeros(capacity + 1)
        previous_valid = np.ones(capacity + 1, dtype=bool)
        choice_tables = []

        for index, profile in enumerate(profiles):
            reserve = (total_min - min_units[index]) if use_reserve_filter else 0
            candidates = self._candidate_configs(profile, capacity, reserve, step)
            current = np.full(capacity + 1, negative_infinity)
            choices = [None] * (capacity + 1)
            for config, size_units, quality in candidates:
                if size_units > capacity:
                    continue
                # Vectorised state transition over all capacities that can
                # afford this configuration.
                reachable = np.arange(size_units, capacity + 1)
                source = reachable - size_units
                values = np.where(previous_valid[source], previous[source] + quality, negative_infinity)
                better = values > current[reachable]
                improved = reachable[better]
                current[improved] = values[better]
                for j in improved:
                    choices[j] = config
            previous = current
            previous_valid = np.isfinite(current)
            choice_tables.append(choices)

        if capacity < 0 or not previous_valid.any():
            return {}

        # Backtrack from the best achievable capacity (monotone DP, so the
        # optimum sits at the largest valid capacity's maximum value).
        best_capacity = int(np.nanargmax(np.where(previous_valid, previous, negative_infinity)))
        assignments = {}
        remaining = best_capacity
        for index in range(len(profiles) - 1, -1, -1):
            config = choice_tables[index][remaining]
            if config is None:
                return {}
            assignments[profiles[index].name] = config
            remaining -= self._quantize(profiles[index].predict_size(config), step)
            if remaining < 0:
                return {}
        return assignments


class NeRFlexDPSelector(_BaseDPSelector):
    """The paper's Algorithm 1: feasibility-filtered MCK dynamic program.

    For every object the filter removes configurations whose size exceeds
    ``r_i = H - sum_{h != i} min_size_h`` — the space left after reserving
    the cheapest configuration for every other object — then the dynamic
    program assigns exactly one configuration per object to maximise total
    predicted quality within the budget.
    """

    method_name = "nerflex-dp"

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        """Select one configuration per profiled object."""
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")
        assignments = self._solve(profiles, budget_mb, use_reserve_filter=True)
        if not assignments:
            result = build_result(
                self.method_name, profiles, _fallback_min_assignments(profiles), budget_mb
            )
            result.feasible = False
            return result
        return build_result(self.method_name, profiles, assignments, budget_mb)


class ExactMCKSelector(_BaseDPSelector):
    """Textbook multiple-choice-knapsack DP (no feasibility filter).

    Used as the correctness reference: on any instance where a feasible
    selection exists, Algorithm 1 must achieve the same total predicted
    quality (the ``r_i`` filter never removes a configuration that could be
    part of an optimal feasible solution).
    """

    method_name = "exact-mck"

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")
        assignments = self._solve(profiles, budget_mb, use_reserve_filter=False)
        if not assignments:
            result = build_result(
                self.method_name, profiles, _fallback_min_assignments(profiles), budget_mb
            )
            result.feasible = False
            return result
        return build_result(self.method_name, profiles, assignments, budget_mb)
