"""The end-to-end NeRFlex pipeline.

``segment -> profile -> select -> bake -> deploy``:

1. the **segmentation** module decides which objects get dedicated NeRFs and
   constructs their enlarged training sets;
2. the **profiler** fits, per sub-scene, white-box models mapping a
   configuration ``(g, p)`` to rendering quality and baked size, by baking
   and scoring a handful of sample configurations;
3. the **selector** (the DP of Algorithm 1 by default) picks one
   configuration per sub-scene under the target device's memory budget;
4. each sub-scene's field is **baked** at its selected configuration;
5. the resulting multi-NeRF bundle is **deployed** to the device simulator,
   which reports data size, rendering quality against ground truth and an
   FPS trace.

The wall-clock split across segmentation / profiler / solver is recorded for
the overhead analysis (Fig. 9).

The staged chain also exists as an explicit task DAG
(:meth:`NeRFlexPipeline.build_dag`, scheduled by
:class:`~repro.exec.dag.DagScheduler`): one node per stage, edges derived
from the artifacts the stages exchange.  For a single scene the DAG is a
chain — same stages, same timers, bit-identical reports — but
:func:`run_corpus` unions the DAGs of several independent scenes into one
graph, so profile/bake/deploy of different scenes overlap on a worker pool
while per-scene stage order is preserved by the artifact edges alone.
Node costs come from the measured :mod:`~repro.exec.costmodel` when it is
fitted, static per-stage hints otherwise.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.baking.baked_model import (
    BakedMultiModel,
    DEFAULT_SIZE_CONSTANTS,
    SizeConstants,
    bake_field,
    bake_geometry,
    field_cache_identity,
)
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.profiler import ObjectProfile, ProfileFitter
from repro.core.segmentation import DetailBasedSegmenter, SegmentationResult, SubScene
from repro.core.selector import NeRFlexDPSelector, SelectionResult
from repro.config import env as repro_env
from repro.device.memory import MemoryModel
from repro.device.models import DeviceProfile
from repro.device.render_sim import RenderSimulator
from repro.exec.artifacts import ArtifactStore
from repro.exec.backends import Backend, resolve_backend, transport_label
from repro.exec.costmodel import default_cost_model
from repro.exec.dag import DagNode, DagScheduler, DagValidationError, TaskDag
from repro.metrics import lpips_proxy, psnr, ssim
from repro.metrics.fps import FPSTrace
from repro.nerf.degradation import DegradedField, coverage_detail_scale
from repro.render.engine import (
    RenderEngine,
    _content_identity,
    default_cache,
    default_engine,
)
from repro.scenes.cameras import orbit_cameras
from repro.utils.timing import StageTimer


@dataclass
class PipelineConfig:
    """Tunable parameters of the NeRFlex pipeline.

    Attributes:
        config_space: per-object configuration space searched by the selector.
        profile_resolution: image resolution used for profiler measurements.
        num_profile_views: views rendered per profiler measurement.
        num_eval_views: held-out test views scored at deployment time.
        frequency_threshold: segmentation threshold (``None`` = the paper's
            setting: the lowest maximum frequency among detected objects).
        apply_degradation: model the training-coverage degradation of each
            sub-scene's field (see :mod:`repro.nerf.degradation`).
        size_constants: byte-cost constants of the baked representation.
        num_fps_frames: length of the simulated FPS trace.
        materialize_textures: bake full texture atlases (slower, only needed
            when the atlas itself is inspected).
        selector_safety_margin: fraction of the device budget held back from
            the selector to absorb profiler prediction error (the baked data
            must actually load on the device, not just be predicted to).
        object_eval_resolution: resolution of the per-object close-up views
            used for per-object quality scores.
        seed: seed for the degradation noise and the FPS simulation.
        render_chunk_rays: ray-chunk size of the pipeline's render engine
            (bounds peak memory of the sample-heavy render paths).
        render_workers: worker count of the execution backend (independent
            ray chunks / profiler measurements / bakes run concurrently;
            output is bit-identical for any count).  ``None`` (the default)
            means the backend's own default — 1 for serial/thread, the host
            CPU count for the process pool; an explicit count is always
            honoured, so ``render_workers=1`` bounds even a process backend
            to one worker.
        backend: execution-backend name (``"serial"`` / ``"thread"`` /
            ``"process"`` / ``"cluster"``); ``None`` consults the
            ``REPRO_BACKEND`` environment variable and defaults to the
            behaviour-preserving thread backend.  The cluster backend
            shards stage work (objects for profile/bake, ray chunks for
            deploy) across worker daemons — see :mod:`repro.exec.cluster`;
            every backend produces bit-identical pipeline output.
        transport: worker-transport name for the daemon-backed backends
            (``"fork"`` — socketpair + fork, the default — or ``"tcp"`` —
            loopback TCP workers, the multi-machine-shaped wire protocol);
            ``None`` consults ``REPRO_TRANSPORT``.  Ignored by in-process
            backends; every transport produces bit-identical output.
        kernel: hot-loop kernel backend of the render engine (``"numpy"`` /
            ``"loops"`` / ``"numba"`` / ``"auto"``); ``None`` consults
            ``REPRO_KERNEL`` (default ``auto`` — compiled when numba is
            installed, numpy otherwise).  Marching and sphere tracing are
            bit-identical across kernels; the volume path is pinned to a
            few ULP (see DESIGN.md "Kernels").
        dag_workers: worker count of the stage-DAG scheduler that
            :meth:`NeRFlexPipeline.run` (and :func:`run_corpus`) route
            through when positive; ``0`` keeps the sequential staged path
            and ``None`` consults ``REPRO_DAG_WORKERS``.  Reports are
            bit-identical for any count (pinned in
            ``tests/test_pipeline_dag.py``); only wall-clock changes.
    """

    config_space: ConfigurationSpace = field(default_factory=ConfigurationSpace)
    profile_resolution: int = 160
    num_profile_views: int = 1
    num_eval_views: int = 2
    frequency_threshold: "float | None" = None
    apply_degradation: bool = True
    size_constants: SizeConstants = field(default_factory=lambda: DEFAULT_SIZE_CONSTANTS)
    num_fps_frames: int = 2000
    materialize_textures: bool = False
    selector_safety_margin: float = 0.04
    object_eval_resolution: int = 176
    seed: int = 0
    render_chunk_rays: int = 8192
    render_workers: "int | None" = None
    backend: "str | None" = None
    transport: "str | None" = None
    kernel: "str | None" = None
    dag_workers: "int | None" = None


@dataclass
class PreparationResult:
    """Everything produced by the cloud-side preparation stage."""

    segmentation: SegmentationResult
    profiles: list
    selection: SelectionResult
    timers: StageTimer
    fields: dict
    truths: dict
    dataset_name: str = ""

    #: Stage names that constitute the paper's one-shot preparation overhead.
    PREPARATION_STAGES = ("segmentation", "profiler", "solver")

    @property
    def overhead_seconds(self) -> dict:
        """Wall-clock split across segmentation / profiler / solver (Fig. 9).

        Restricted to the paper's preparation stages even after ``bake`` /
        ``deploy`` have added their own stages to the shared timers.
        """
        stages = self.timers.as_dict()
        return {name: stages[name] for name in self.PREPARATION_STAGES if name in stages}

    @property
    def stage_seconds(self) -> dict:
        """Wall-clock of every recorded stage, bake and deploy included."""
        return self.timers.as_dict()


@dataclass
class DeploymentReport:
    """Evaluation of one deployment (method x scene x device).

    Quality metrics are computed against the ground-truth test renders of the
    full scene; ``per_object_ssim`` restricts SSIM to each object's pixels.
    """

    method: str
    device_name: str
    size_mb: float
    per_object_size_mb: dict
    loaded: bool
    ssim: float
    psnr: float
    lpips: float
    per_object_ssim: dict
    fps_trace: FPSTrace
    num_submodels: int = 1
    selection: "SelectionResult | None" = None
    overhead_seconds: dict = field(default_factory=dict)
    backend_name: str = ""
    #: Worker-transport name of a daemon-backed backend (``"fork"`` /
    #: ``"tcp"``); the explicit ``"none"`` for the in-process backends —
    #: never the empty string, so consumers can tell "no transport" from
    #: "field missing" (see :func:`repro.exec.backends.transport_label`).
    transport_name: str = "none"
    stage_seconds: dict = field(default_factory=dict)
    worker_seconds: dict = field(default_factory=dict)
    #: Snapshot of the pipeline's artifact-store statistics at deploy time
    #: (see :meth:`repro.exec.ArtifactStore.stats_summary`); empty when the
    #: pipeline runs without a store.  ``worker_seconds`` carries both the
    #: pipeline-level stages ("profiler", "bake") and the engine-internal
    #: render channels ("render:profiler", "render:deploy", ...).
    artifact_stats: dict = field(default_factory=dict)

    @property
    def average_fps(self) -> float:
        return self.fps_trace.average

    def describe(self) -> dict:
        return {
            "method": self.method,
            "device": self.device_name,
            "size_mb": round(self.size_mb, 1),
            "loaded": self.loaded,
            "ssim": round(self.ssim, 4),
            "psnr": round(self.psnr, 2),
            "lpips": round(self.lpips, 4),
            "average_fps": round(self.average_fps, 1),
            "per_object_ssim": {k: round(v, 4) for k, v in self.per_object_ssim.items()},
            "per_object_size_mb": {
                k: round(v, 1) for k, v in self.per_object_size_mb.items()
            },
        }


def _bake_geometry_task(task: tuple):
    """Voxelise one field at one granularity (module-level, so its callable
    identity is stable across maps and pipelines — bake maps on every
    pipeline reuse the same worker daemons instead of respawning them)."""
    return bake_geometry(task[1], task[2])


#: Static per-stage cost hints (relative units, scaled by object count) the
#: DAG scheduler falls back to when the measured cost model has no fit for a
#: stage.  Keys are the stage timer channels — the same labels
#: ``BENCH_*.json`` trajectories record, so a fitted model overrides these
#: hints stage by stage.
STATIC_STAGE_HINTS = {
    "segmentation": 1.0,
    "profiler": 8.0,
    "solver": 1.0,
    "bake": 4.0,
    "deploy": 2.0,
}


def object_evaluation_cameras(dataset, resolution: int = 128) -> dict:
    """One close-up evaluation camera per object instance.

    Per-object quality (Fig. 8a) is scored from an object-centred viewpoint
    so that the configuration chosen for that object's NeRF actually shows
    up in the measurement (from a far scene-level view every configuration
    above a low floor looks identical).
    """
    cameras = {}
    for placed in dataset.scene.placed:
        extent = float(np.max(placed.bounds_max - placed.bounds_min))
        center = 0.5 * (placed.bounds_min + placed.bounds_max)
        cameras[placed.instance_name] = orbit_cameras(
            center,
            radius=1.25 * extent,
            count=1,
            elevation_deg=28.0,
            width=resolution,
            height=resolution,
        )[0]
    return cameras


def evaluate_baked_deployment(
    multi_model: BakedMultiModel,
    dataset,
    device: DeviceProfile,
    method: str,
    num_eval_views: int = 2,
    num_fps_frames: int = 2000,
    seed: int = 0,
    selection: "SelectionResult | None" = None,
    overhead_seconds: "dict | None" = None,
    object_eval_resolution: int = 176,
    gt_cache: "dict | None" = None,
    engine: "RenderEngine | None" = None,
    backend_name: str = "",
    worker_seconds: "dict | None" = None,
) -> DeploymentReport:
    """Score a baked multi-NeRF bundle on a dataset and device.

    Shared by the NeRFlex pipeline and the Single-NeRF / Block-NeRF
    baselines so every method is evaluated identically.  Scene-level
    quality (SSIM / PSNR / LPIPS) is computed on the dataset's held-out test
    views; per-object quality is computed from object-centred close-up
    views.  Rendering goes through ``engine`` (the shared default engine
    when omitted), whose ``(scene, camera, quality)`` cache dedupes the
    ground-truth close-ups and any re-render of the same baked bundle
    across methods and figures.  ``gt_cache`` (optional legacy dict, shared
    across methods) is still honoured for the ground-truth close-ups.
    """
    engine = engine or default_engine()
    size_mb = multi_model.size_mb()
    per_object_size = {model.name: model.size_mb() for model in multi_model.submodels}

    memory = MemoryModel(device)
    outcome = memory.try_load(size_mb)
    fps_trace = RenderSimulator(device=device, seed=seed).simulate(
        size_mb=size_mb,
        num_submodels=multi_model.num_submodels,
        num_frames=num_fps_frames,
    )

    views = dataset.test_views[: max(num_eval_views, 1)]
    ssim_scores, psnr_scores, lpips_scores = [], [], []
    per_object_ssim: dict = {}
    if outcome.loaded:
        # All test views march in one cross-view ray batch; the baked-model
        # fingerprint in the cache key dedupes identical re-renders (e.g.
        # the detail-region metrics scoring the same bundle later).
        test_cameras = dataset.test_cameras[: len(views)]
        rendered_views = engine.render_baked_views(
            multi_model,
            test_cameras,
            background=dataset.scene.background_color,
            scene_key=dataset.name,
        )
        for view, rendered in zip(views, rendered_views):
            ssim_scores.append(ssim(view.rgb, rendered.rgb))
            psnr_scores.append(psnr(view.rgb, rendered.rgb))
            lpips_scores.append(lpips_proxy(view.rgb, rendered.rgb))

        cache = gt_cache if gt_cache is not None else {}
        cameras = object_evaluation_cameras(dataset, resolution=object_eval_resolution)
        for placed in dataset.scene.placed:
            name = placed.instance_name
            camera = cameras[name]
            gt_key = (dataset.name, name, object_eval_resolution)
            if gt_key not in cache:
                cache[gt_key] = engine.render_scene(
                    dataset.scene, camera, scene_key=(dataset.name, "scene-gt")
                )
            reference = cache[gt_key]
            # Only sub-models whose grid lies near the object can appear in
            # its close-up view; skipping the rest keeps evaluation cheap.
            target_center = 0.5 * (placed.bounds_min + placed.bounds_max)
            target_extent = float(np.max(placed.bounds_max - placed.bounds_min))
            nearby = []
            for submodel in multi_model.submodels:
                grid_center = 0.5 * (submodel.grid.bounds_min + submodel.grid.bounds_max)
                grid_radius = 0.5 * np.linalg.norm(
                    submodel.grid.bounds_max - submodel.grid.bounds_min
                )
                if np.linalg.norm(grid_center - target_center) <= grid_radius + 2.0 * target_extent:
                    nearby.append(submodel)
            rendered = engine.render_baked(
                BakedMultiModel(nearby) if nearby else multi_model,
                camera,
                background=dataset.scene.background_color,
                scene_key=dataset.name,
            )
            if reference.object_mask(placed.instance_id).sum() < 16:
                continue
            per_object_ssim[name] = float(ssim(reference.rgb, rendered.rgb))
    return DeploymentReport(
        method=method,
        device_name=device.name,
        size_mb=size_mb,
        per_object_size_mb=per_object_size,
        loaded=outcome.loaded,
        ssim=float(np.mean(ssim_scores)) if ssim_scores else 0.0,
        psnr=float(np.mean(psnr_scores)) if psnr_scores else 0.0,
        lpips=float(np.mean(lpips_scores)) if lpips_scores else 1.0,
        per_object_ssim=per_object_ssim,
        fps_trace=fps_trace,
        num_submodels=multi_model.num_submodels,
        selection=selection,
        overhead_seconds=dict(overhead_seconds or {}),
        backend_name=backend_name or (engine.backend.name if engine else ""),
        worker_seconds=dict(worker_seconds or {}),
    )


class NeRFlexPipeline:
    """Orchestrates the full NeRFlex workflow for one target device.

    Args:
        device: the target device profile (its ``memory_budget_mb`` is the
            selector's size limit ``H``).
        config: pipeline parameters.
        selector: configuration selector; defaults to the paper's DP
            (Algorithm 1).  Passing a different selector reproduces the
            Fairness / SLSQP ablations of §IV-C.
        segmenter: detail-based segmenter (a default one is built from the
            config when omitted).
        measurement_cache: optional dict shared between pipelines so that
            profiler measurements and bake geometry (which do not depend on
            the device) are reused across devices and selectors.  Rendered
            views are cached separately by the render engine.
        engine: render engine used for every ground-truth and baked render;
            defaults to one built from the config's chunk/worker knobs that
            shares the process-wide render cache and this pipeline's
            execution backend.
        artifacts: optional :class:`~repro.exec.artifacts.ArtifactStore`.
            When present, the profile stage reuses fitted profile curves and
            the bake stage reuses baked sub-models whose content-addressed
            keys match — across devices, selectors and repeated
            ``prepare()`` calls (the keys carry content fingerprints and
            every preparation knob, never the device).
        backend: execution backend for the pipeline's bulk stages (profiler
            measurements, per-object bake geometry) — an instance, a name,
            or ``None`` to use ``config.backend`` / ``REPRO_BACKEND``.
    """

    def __init__(
        self,
        device: DeviceProfile,
        config: "PipelineConfig | None" = None,
        selector=None,
        segmenter: "DetailBasedSegmenter | None" = None,
        measurement_cache: "dict | None" = None,
        engine: "RenderEngine | None" = None,
        artifacts: "ArtifactStore | None" = None,
        backend: "Backend | str | None" = None,
    ) -> None:
        self.device = device
        self.config = config or PipelineConfig()
        self.selector = selector or NeRFlexDPSelector()
        self.segmenter = segmenter or DetailBasedSegmenter(
            frequency_threshold=self.config.frequency_threshold
        )
        self.measurement_cache = measurement_cache if measurement_cache is not None else {}
        self.artifacts = artifacts
        #: Stable-identity task callable of the object-sharded profile
        #: stage, for the most recent dataset (see :meth:`_sharded_fit_task`).
        self._sharded_fit_task_cache: "tuple | None" = None
        self.backend = resolve_backend(
            backend if backend is not None else self.config.backend,
            workers=self.config.render_workers,
            transport=self.config.transport,
        )
        # Store-aware scheduling: a cost-hinted backend (the cluster) shares
        # this pipeline's on-disk artifact tier, so its planner can mark
        # already-persisted profiles/bakes as cheap shards and its workers
        # can serve them from disk.  Known caveat: this mutates a
        # caller-supplied backend instance, so a backend reused across
        # pipelines keeps the *first* pipeline's store (the write-through
        # guard in stage_profile compares store roots, so results stay
        # correct; only the scheduling hints would consult the older store).
        if (
            getattr(self.backend, "supports_cost_hints", False)
            and getattr(self.backend, "store", None) is None
            and self.artifacts is not None
            and self.artifacts.disk is not None
        ):
            self.backend.store = self.artifacts.disk
        # The measured cost model behind DAG node costs and sharded-map cost
        # hints: the cluster backend already owns one (shared so planner and
        # scheduler agree); otherwise the environment-configured default —
        # fitted from $REPRO_COST_DIR trajectories when set, unfitted (every
        # prediction falls back to the static hints) otherwise.
        self.cost_model = getattr(self.backend, "cost_model", None) or default_cost_model()
        self.engine = engine or RenderEngine(
            chunk_rays=self.config.render_chunk_rays,
            workers=self.config.render_workers,
            cache=default_cache(),
            backend=self.backend,
            kernel=self.config.kernel,
        )

    # -- staged preparation ---------------------------------------------------

    def stage_segment(self, dataset) -> SegmentationResult:
        """Stage 1: detail-based segmentation of the dataset's scene."""
        return self.segmenter.segment(dataset)

    def stage_profile(
        self, dataset, segmentation: SegmentationResult, timers: "StageTimer | None" = None
    ) -> tuple:
        """Stage 2: fit (or reuse) per-sub-scene quality/size profiles.

        Returns ``(fields, truths, profiles)``.  Profile curves are looked
        up in the artifact store first — they depend on the scene content
        and the preparation knobs, never on the device, so a store shared
        across pipelines fits each sub-scene exactly once.  Misses fan out
        through the execution backend; worker-side time is attributed to
        the ``"profiler"`` stage on ``timers``.

        Sharding granularity follows the backend: in-process and fork-pool
        backends parallelise each fit's *sample measurements* (the paper's
        45-task fan-out), while an object-sharding backend
        (``backend.shards_objects``, i.e. the cluster backend) is handed
        whole objects — one profile fit per shard item, cost-weighted by
        the measurements still missing and discounted for profiles already
        in the shared on-disk store (see
        :meth:`repro.exec.cluster.ClusterBackend.map`).  Both paths are
        pure per object and produce bit-identical profiles.
        """
        fields: dict = {}
        truths: dict = {}
        profiles_by_name: dict = {}
        pending: list = []
        for sub_scene in segmentation.sub_scenes:
            truth = dataset.scene.subset(sub_scene.instance_ids)
            field_model = self._build_field(truth, sub_scene)
            fields[sub_scene.name] = field_model
            truths[sub_scene.name] = truth
            artifact_key = self._profile_artifact_key(dataset, sub_scene, field_model)
            profile = self.artifacts.get(artifact_key) if self.artifacts is not None else None
            if profile is None:
                pending.append((sub_scene, truth, field_model, artifact_key))
            else:
                profiles_by_name[sub_scene.name] = profile

        if pending:
            sharded = getattr(self.backend, "shards_objects", False) and len(pending) > 1
            if sharded:
                fitted = self._profile_objects_sharded(dataset, pending, timers)
            else:
                fitted = [self._fit_profile(dataset, entry, timers) for entry in pending]
            # In the sharded path the workers already persisted fresh fits
            # into the shared disk tier; the parent then only needs the
            # memory-tier put, not a second disk write of the same bytes.
            # Compared by directory, not instance: an env-configured backend
            # builds its own store object over the same cache directory.
            backend_store = getattr(self.backend, "store", None)
            worker_persisted = (
                sharded
                and self.artifacts is not None
                and self.artifacts.disk is not None
                and backend_store is not None
                and backend_store.root == self.artifacts.disk.root
            )
            for (sub_scene, _, _, artifact_key), profile in zip(pending, fitted):
                # Re-apply worker-side memoisation in this process: with the
                # process and cluster backends the measure tasks ran in
                # forked children, whose measurement_cache writes died with
                # them.
                for config, measurement in profile.measurements.items():
                    key = (
                        dataset.name,
                        sub_scene.name,
                        config.granularity,
                        config.patch_size,
                    )
                    self.measurement_cache.setdefault(key, measurement)
                if self.artifacts is not None:
                    self.artifacts.put(
                        artifact_key, profile, write_through=not worker_persisted
                    )
                profiles_by_name[sub_scene.name] = profile

        profiles = [
            profiles_by_name[sub_scene.name] for sub_scene in segmentation.sub_scenes
        ]

        # Detail weights: the selector's objective follows the segmentation
        # module's detail frequencies (normalised to mean 1), so texture
        # budget flows toward the high-frequency region the paper evaluates
        # rather than being spent on low-detail backdrops.  Recomputed on
        # every call (store-reused profiles included): the weights are a
        # deterministic function of the segmentation.
        frequencies = np.array(
            [sub.max_frequency for sub in segmentation.sub_scenes], dtype=np.float64
        )
        mean_frequency = float(frequencies.mean())
        if mean_frequency > 0:
            for profile, sub_scene in zip(profiles, segmentation.sub_scenes):
                profile.detail_weight = float(sub_scene.max_frequency / mean_frequency)
        return fields, truths, profiles

    def stage_select(self, profiles: list) -> SelectionResult:
        """Stage 3: pick one configuration per sub-scene under the budget."""
        selector_budget = self.device.memory_budget_mb * (
            1.0 - self.config.selector_safety_margin
        )
        return self.selector.select(profiles, selector_budget)

    def prepare(self, dataset) -> PreparationResult:
        """Run the segment -> profile -> select stages, timing each."""
        timers = StageTimer()

        with timers.time("segmentation"):
            segmentation = self.stage_segment(dataset)
        # The engine attribution channel ("render:profiler") captures the
        # chunk maps of the ground-truth and measurement renders — work that
        # the pipeline-level "profiler" map cannot see when it happens
        # outside a mapped task (and that an in-process backend would
        # double-count if it shared the "profiler" key).
        with timers.time("profiler"), self.engine.attribute(timers, "render:profiler"):
            fields, truths, profiles = self.stage_profile(dataset, segmentation, timers)
        with timers.time("solver"):
            selection = self.stage_select(profiles)

        return PreparationResult(
            segmentation=segmentation,
            profiles=profiles,
            selection=selection,
            timers=timers,
            fields=fields,
            truths=truths,
            dataset_name=getattr(dataset, "name", ""),
        )

    # -- execution-layer plumbing ---------------------------------------------

    def _stage_map(self, stage: str, timers: "StageTimer | None"):
        """An ordered-map function over this pipeline's execution backend.

        Worker-side task time is attributed to ``stage`` on ``timers``
        (see :meth:`repro.utils.timing.StageTimer.add_worker`).
        """

        def mapper(fn, items):
            return self.backend.map(fn, items, timer=timers, stage=stage)

        return mapper

    def _fit_profile(self, dataset, entry: tuple, timers: "StageTimer | None"):
        """Fit one sub-scene's profile, fanning its sample measurements out."""
        sub_scene, truth, field_model, _ = entry
        measure = self._make_measure_fn(dataset, sub_scene, truth, field_model)
        return ProfileFitter(self.config.config_space).fit(
            sub_scene.name,
            measure,
            map_fn=self._stage_map("profiler", timers),
        )

    def _profile_cost(self, dataset, sub_scene: SubScene) -> float:
        """Estimated profiling work of one sub-scene, for shard planning.

        A sample measurement bakes at granularity ``g`` (``g^3`` voxel
        work) and textures ``p`` texels per face edge; measurements already
        memoised in ``measurement_cache`` cost nothing.
        """
        cost = 0.0
        for config in self.config.config_space.profiling_configs():
            key = (dataset.name, sub_scene.name, config.granularity, config.patch_size)
            if key not in self.measurement_cache:
                cost += float(config.granularity) ** 3 * float(config.patch_size)
        return max(cost, 1.0)

    def _profile_features(self, dataset, sub_scene: SubScene) -> dict:
        """Cost-model features of one sub-scene's profile fit (see
        :data:`repro.exec.costmodel.FEATURE_NAMES`)."""
        missing = [
            config
            for config in self.config.config_space.profiling_configs()
            if (dataset.name, sub_scene.name, config.granularity, config.patch_size)
            not in self.measurement_cache
        ]
        return {
            "objects": 1.0,
            "candidates": float(len(missing)),
            "g_cubed": float(sum(float(c.granularity) ** 3 for c in missing)),
            "rays": float(self.config.render_chunk_rays),
        }

    def _profile_objects_sharded(
        self, dataset, pending: list, timers: "StageTimer | None"
    ) -> list:
        """Fan whole-object profile fits out through an object-sharding backend.

        Each task fits one sub-scene's profile end to end (ground-truth
        close-ups, sample bakes, model fits) inside a worker; nested maps
        degenerate to the serial loop there, so the parallelism is purely
        across objects — the paper's unit of decomposition.  Workers share
        the backend's on-disk artifact store: a profile another process
        (or a previous invocation) already persisted is loaded instead of
        recomputed, and fresh fits are persisted from the worker so
        sibling schedulers see them immediately.  Tasks are pure functions
        of their sub-scene, so results are bit-identical to the in-process
        path for any worker or shard count.

        The task callable is memoised per dataset (see
        :meth:`_sharded_fit_task`) so its identity qualifies for the
        worker host's daemon reuse — which engages only when the entries
        also pickle.  The library's built-in scenes close over local SDF
        functions, so their profile maps ride the fork image on one-shot
        daemons (the same per-map fork as before this refactor); scenes
        built from picklable fields get daemon reuse for free.
        """
        # ``cost_stage``/``cost_features`` let a fitted cost model replace
        # the static g^3-derived hints with measured per-object seconds;
        # the hints remain the fallback for unfitted stages.
        return self.backend.map(
            self._sharded_fit_task(dataset),
            pending,
            timer=timers,
            stage="profiler",
            costs=[self._profile_cost(dataset, entry[0]) for entry in pending],
            cost_keys=[entry[3] for entry in pending],
            cost_stage="profiler",
            cost_features=[
                self._profile_features(dataset, entry[0]) for entry in pending
            ],
        )

    def _sharded_fit_task(self, dataset):
        """The object-sharded profile task, with a stable callable identity.

        Worker-daemon reuse keys on callable identity (the
        :class:`~repro.exec.worker.WorkerHost` token registry): a fresh
        closure per map would force a re-registration — and, on fork-image
        transports, a respawn — every time.  Stable identity is necessary
        but not sufficient: maps whose entries do not pickle (scenes with
        closure SDFs) take the host's one-shot path regardless.  One
        entry suffices (pipelines profile one dataset at a time) and
        keeps a dataset swap from pinning every previous dataset in
        memory.  The shared store is looked up through the backend *at
        task time* so a store wired after the first map is still honoured.
        """
        if self._sharded_fit_task_cache is not None:
            cached_dataset, task = self._sharded_fit_task_cache
            if cached_dataset is dataset:
                return task
        config_space = self.config.config_space
        pipeline = self

        def fit_task(entry):
            sub_scene, truth, field_model, artifact_key = entry
            store = getattr(pipeline.backend, "store", None)
            if store is not None:
                cached = store.get(artifact_key)
                if cached is not None:
                    return cached
            measure = pipeline._make_measure_fn(dataset, sub_scene, truth, field_model)
            profile = ProfileFitter(config_space).fit(sub_scene.name, measure)
            if store is not None:
                store.put(artifact_key, profile)
            return profile

        self._sharded_fit_task_cache = (dataset, fit_task)
        return fit_task

    def _profile_artifact_key(self, dataset, sub_scene: SubScene, field_model) -> tuple:
        """Content-addressed artifact key of one sub-scene's profile curves."""
        space = self.config.config_space
        return (
            "profile",
            getattr(dataset, "name", ""),
            sub_scene.name,
            _content_identity(field_model),
            tuple(space.granularities),
            tuple(space.patch_sizes),
            self.config.profile_resolution,
            self.config.num_profile_views,
            self.config.seed,
            self.config.apply_degradation,
            self.config.size_constants,
        )

    def _baked_artifact_key(self, dataset_name, name, field_model, config) -> tuple:
        """Content-addressed artifact key of one baked sub-model."""
        return (
            "baked",
            dataset_name,
            name,
            _content_identity(field_model),
            config.granularity,
            config.patch_size,
            self.config.materialize_textures,
            self.config.size_constants,
        )

    def _build_field(self, truth, sub_scene: SubScene):
        """The field that the sub-scene's NeRF would learn from its training set."""
        if not self.config.apply_degradation:
            return truth
        extent = float(np.max(truth.bounds_max - truth.bounds_min))
        detail_scale = coverage_detail_scale(sub_scene.training_pixel_counts, extent)
        return DegradedField(truth, detail_scale, seed=self.config.seed)

    def _profile_cameras(self, truth) -> list:
        """Object-centred measurement viewpoints for the profiler."""
        extent = float(np.max(truth.bounds_max - truth.bounds_min))
        return orbit_cameras(
            truth.center,
            radius=1.25 * extent,
            count=max(self.config.num_profile_views, 1),
            elevation_deg=30.0,
            width=self.config.profile_resolution,
            height=self.config.profile_resolution,
        )

    def _make_measure_fn(self, dataset, sub_scene: SubScene, truth, field_model):
        """Build the profiler's measurement callback for one sub-scene.

        Ground-truth close-ups render once through the engine cache; bake
        geometry is voxelised once per granularity (it never depends on the
        texture knob) and shared across every ``(g, p)`` sample and across
        pipelines through ``measurement_cache``.
        """
        cameras = self._profile_cameras(truth)
        ground_truths = self.engine.render_scene_views(
            truth, cameras, scene_key=(dataset.name, sub_scene.name, "profile-gt")
        )

        def measure(config: Configuration) -> tuple:
            key = (dataset.name, sub_scene.name, config.granularity, config.patch_size)
            if key in self.measurement_cache:
                return self.measurement_cache[key]
            baked = self._bake_one(
                field_model, sub_scene.name, config, dataset_name=dataset.name
            )
            # No scene_key: each profiling sample is rendered exactly once
            # (the measurement tuple is memoised above), so caching these
            # one-shot images would only churn the shared LRU and evict the
            # ground-truth and deployment renders other figures reuse.
            renders = self.engine.render_baked_views(
                BakedMultiModel([baked]),
                cameras,
                background=dataset.scene.background_color,
            )
            scores = [
                ssim(reference.rgb, rendered.rgb)
                for reference, rendered in zip(ground_truths, renders)
            ]
            result = (float(np.mean(scores)), baked.size_mb())
            self.measurement_cache[key] = result
            return result

        return measure

    # -- baking and deployment -------------------------------------------------

    def _geometry_key(
        self, dataset_name: str, name: str, field_model, granularity: int
    ) -> tuple:
        """Measurement-cache key of one field's voxelised geometry."""
        return (
            "geometry",
            dataset_name,
            name,
            field_cache_identity(field_model),
            self.config.seed,
            self.config.apply_degradation,
            int(granularity),
        )

    def _bake_one(
        self,
        field_model,
        name: str,
        config: Configuration,
        dataset_name: "str | None" = None,
        geometry: "tuple | None" = None,
    ):
        geometry_key = None
        if dataset_name:
            geometry_key = self._geometry_key(
                dataset_name, name, field_model, config.granularity
            )
            if geometry is None:
                geometry = self.measurement_cache.get(geometry_key)
        baked = bake_field(
            field_model,
            granularity=config.granularity,
            patch_size=config.patch_size,
            name=name,
            materialize_textures=self.config.materialize_textures,
            size_constants=self.config.size_constants,
            geometry=geometry,
        )
        if geometry_key is not None and geometry is None:
            self.measurement_cache[geometry_key] = (baked.grid, baked.faces)
        return baked

    def _bake_with_store(
        self, field_model, name: str, config: Configuration, dataset_name: str
    ):
        """Bake one sub-scene, consulting the artifact store first."""
        if self.artifacts is None:
            return self._bake_one(field_model, name, config, dataset_name=dataset_name)
        artifact_key = self._baked_artifact_key(dataset_name, name, field_model, config)
        return self.artifacts.get_or_create(
            artifact_key,
            lambda: self._bake_one(field_model, name, config, dataset_name=dataset_name),
        )

    def stage_bake(
        self, preparation: PreparationResult, assignments: dict
    ) -> dict:
        """Stage 4 (initial pass): bake every sub-scene at its assignment.

        Store-reused bakes return immediately; the misses voxelise their
        geometry in parallel through the execution backend (geometry is the
        dominant cost of a lazy-texture bake, and — unlike the baked model's
        lazy texture, which closes over the field — its grid/face arrays are
        plain data that pickles cheaply out of forked workers).  Texture
        lookup objects are then assembled in-process.
        """
        dataset_name = preparation.dataset_name
        sub_scenes = preparation.segmentation.sub_scenes
        timers = preparation.timers
        baked: dict = {}
        pending: list = []
        for sub_scene in sub_scenes:
            name = sub_scene.name
            field_model = preparation.fields[name]
            config = assignments[name]
            cached = None
            if self.artifacts is not None:
                cached = self.artifacts.get(
                    self._baked_artifact_key(dataset_name, name, field_model, config)
                )
            if cached is not None:
                baked[name] = cached
            else:
                baked[name] = None
                pending.append((name, field_model, config))

        if pending:
            geometries: dict = {}
            tasks: list = []
            for name, field_model, config in pending:
                geometry_key = self._geometry_key(
                    dataset_name, name, field_model, config.granularity
                )
                geometry = self.measurement_cache.get(geometry_key)
                if geometry is None:
                    tasks.append((geometry_key, field_model, config.granularity))
                else:
                    geometries[geometry_key] = geometry
            if tasks:
                map_kwargs = {}
                if getattr(self.backend, "supports_cost_hints", False):
                    # Voxelisation work scales with the granularity cube; the
                    # shard planner balances mixed-granularity bakes with it.
                    # A fitted cost model upgrades the hints to measured
                    # seconds (the g^3 hints stay the fallback).
                    map_kwargs["costs"] = [
                        float(granularity) ** 3 for _, _, granularity in tasks
                    ]
                    map_kwargs["cost_stage"] = "bake"
                    map_kwargs["cost_features"] = [
                        {
                            "objects": 1.0,
                            "g_cubed": float(granularity) ** 3,
                            "rays": float(self.config.render_chunk_rays),
                        }
                        for _, _, granularity in tasks
                    ]
                computed = self.backend.map(
                    _bake_geometry_task,
                    tasks,
                    timer=timers,
                    stage="bake",
                    **map_kwargs,
                )
                for (geometry_key, _, _), geometry in zip(tasks, computed):
                    self.measurement_cache[geometry_key] = geometry
                    geometries[geometry_key] = geometry
            for name, field_model, config in pending:
                geometry_key = self._geometry_key(
                    dataset_name, name, field_model, config.granularity
                )
                model = self._bake_one(
                    field_model,
                    name,
                    config,
                    dataset_name=dataset_name,
                    geometry=geometries[geometry_key],
                )
                if self.artifacts is not None:
                    self.artifacts.put(
                        self._baked_artifact_key(dataset_name, name, field_model, config),
                        model,
                    )
                baked[name] = model
        return baked

    def bake(self, preparation: PreparationResult) -> BakedMultiModel:
        """Bake every sub-scene at its selected configuration.

        The selector optimises over *predicted* sizes; after baking, if the
        actual total still exceeds the device budget (profiler error beyond
        the safety margin), sub-scenes are downgraded greedily — smallest
        predicted quality loss per MB recovered — and re-baked until the
        bundle fits.  The selection recorded in ``preparation`` is updated to
        the configurations that were actually deployed.  Wall-clock is
        recorded as the ``"bake"`` stage on the preparation's timers.
        """
        timers = preparation.timers
        with timers.time("bake"), self.engine.attribute(timers, "render:bake"):
            return self._bake_locked(preparation)

    def _bake_locked(self, preparation: PreparationResult) -> BakedMultiModel:
        assignments = dict(preparation.selection.assignments)
        profiles_by_name = {profile.name: profile for profile in preparation.profiles}
        dataset_name = preparation.dataset_name
        baked = self.stage_bake(preparation, assignments)

        def total_size() -> float:
            return sum(model.size_mb() for model in baked.values())

        for _ in range(32):
            if total_size() <= self.device.memory_budget_mb:
                break
            best_name, best_config, best_rate = None, None, np.inf
            for name, profile in profiles_by_name.items():
                current = assignments[name]
                current_size = baked[name].size_mb()
                current_quality = profile.objective_quality(current)
                for config in profile.config_space:
                    size_gain = profile.predict_size(config) - current_size
                    if size_gain >= -1e-6:
                        continue
                    loss_rate = (current_quality - profile.objective_quality(config)) / (
                        -size_gain
                    )
                    if loss_rate < best_rate:
                        best_name, best_config, best_rate = name, config, loss_rate
            if best_name is None:
                break
            assignments[best_name] = best_config
            baked[best_name] = self._bake_with_store(
                preparation.fields[best_name],
                best_name,
                best_config,
                dataset_name,
            )

        # Record the deployed configurations back onto the selection.
        for name, config in assignments.items():
            preparation.selection.assignments[name] = config
            profile = profiles_by_name[name]
            preparation.selection.predicted_quality[name] = profile.predict_quality(config)
            preparation.selection.predicted_size_mb[name] = profile.predict_size(config)

        ordered = [
            baked[sub_scene.name] for sub_scene in preparation.segmentation.sub_scenes
        ]
        return BakedMultiModel(ordered)

    def deploy(
        self,
        multi_model: BakedMultiModel,
        dataset,
        preparation: "PreparationResult | None" = None,
        method: str = "NeRFlex",
    ) -> DeploymentReport:
        """Evaluate a baked bundle on this pipeline's target device.

        When a ``preparation`` is supplied, the evaluation wall-clock is
        recorded as its ``"deploy"`` stage and the report carries the full
        stage split (including bake/deploy) plus the backend name and the
        worker-side per-stage seconds.
        """
        timers = preparation.timers if preparation is not None else None
        context = (
            timers.time("deploy") if timers is not None else contextlib.nullcontext()
        )
        attribution = (
            self.engine.attribute(timers, "render:deploy")
            if timers is not None
            else contextlib.nullcontext()
        )
        with context, attribution:
            report = evaluate_baked_deployment(
                multi_model,
                dataset,
                self.device,
                method=method,
                num_eval_views=self.config.num_eval_views,
                num_fps_frames=self.config.num_fps_frames,
                seed=self.config.seed,
                selection=preparation.selection if preparation else None,
                object_eval_resolution=self.config.object_eval_resolution,
                gt_cache=self.measurement_cache,
                engine=self.engine,
                backend_name=self.backend.name,
            )
        report.transport_name = transport_label(self.backend)
        if preparation is not None:
            # Explicit copies: the report must stay a frozen snapshot even
            # if the preparation's timers keep accumulating (a later bake or
            # re-deploy against the same preparation must not rewrite an
            # already-returned report's stage split).
            report.overhead_seconds = dict(preparation.overhead_seconds)
            report.stage_seconds = dict(preparation.stage_seconds)
            report.worker_seconds = dict(timers.worker_as_dict())
        if self.artifacts is not None:
            report.artifact_stats = self.artifacts.stats_summary()
        return report

    # -- the stage DAG ----------------------------------------------------------

    def _stage_features(self, dataset) -> dict:
        """Cost-model features of one whole-scene stage node (see
        :data:`repro.exec.costmodel.FEATURE_NAMES`)."""
        space = self.config.config_space
        return {
            "objects": float(len(dataset.scene.placed)),
            "candidates": float(len(space.profiling_configs())),
            "g_cubed": float(max(space.granularities)) ** 3,
            "rays": float(self.config.render_chunk_rays),
        }

    def _stage_node_cost(self, stage: str, features: dict) -> float:
        """Predicted seconds of one stage node — measured model when fitted
        for the stage, :data:`STATIC_STAGE_HINTS` scaled by object count
        otherwise."""
        hint = STATIC_STAGE_HINTS.get(stage, 1.0) * max(features.get("objects", 1.0), 1.0)
        return self.cost_model.predict(stage, features, fallback=hint)

    def build_dag(self, dataset, dag: "TaskDag | None" = None) -> TaskDag:
        """Add this pipeline's staged run on ``dataset`` to a task DAG.

        One :class:`~repro.exec.dag.DagNode` per stage, named
        ``"<stage>:<scene>"`` and exchanging artifacts named
        ``"<scene>/<artifact>"`` (``scene`` is the dataset name).  The
        caller seeds ``"<scene>/dataset"``; the run produces
        ``"<scene>/preparation"``, ``"<scene>/bundle"`` and
        ``"<scene>/report"``.  Node bodies run the exact same timed stage
        code as :meth:`prepare` / :meth:`bake` / :meth:`deploy` — same
        :class:`~repro.utils.timing.StageTimer` channels, same engine
        attribution — so a DAG run's reports are bit-identical to the
        sequential path for any worker count (timings excepted, as always).
        Within one scene the nodes form a chain, so per-scene stage order
        (and the engine's one-attribution-at-a-time discipline) is
        preserved by the artifact edges alone; parallelism comes from
        unioning several scenes' chains into one graph
        (:func:`run_corpus`).  Node costs are measured-model predictions
        with static-hint fallback (:meth:`_stage_node_cost`), so the
        scheduler dispatches the heaviest ready stage first.

        Pass an existing ``dag`` to union several pipelines' chains; scene
        names must be unique across them (enforced by the DAG's
        unique-producer rule).
        """
        dag = dag if dag is not None else TaskDag()
        scene = getattr(dataset, "name", "") or "scene"
        features = self._stage_features(dataset)

        def segment_body(inputs: dict) -> dict:
            timers = StageTimer()
            with timers.time("segmentation"):
                segmentation = self.stage_segment(inputs[f"{scene}/dataset"])
            return {
                f"{scene}/segmentation": segmentation,
                f"{scene}/timers": timers,
            }

        dag.add(DagNode(
            name=f"segment:{scene}",
            stage="segmentation",
            scene=scene,
            body=segment_body,
            inputs=(f"{scene}/dataset",),
            outputs=(f"{scene}/segmentation", f"{scene}/timers"),
            cost=self._stage_node_cost("segmentation", features),
        ))

        def profile_body(inputs: dict):
            timers = inputs[f"{scene}/timers"]
            with timers.time("profiler"), self.engine.attribute(
                timers, "render:profiler"
            ):
                return self.stage_profile(
                    inputs[f"{scene}/dataset"],
                    inputs[f"{scene}/segmentation"],
                    timers,
                )

        dag.add(DagNode(
            name=f"profile:{scene}",
            stage="profiler",
            scene=scene,
            body=profile_body,
            inputs=(
                f"{scene}/dataset",
                f"{scene}/segmentation",
                f"{scene}/timers",
            ),
            outputs=(f"{scene}/profile",),
            cost=self._stage_node_cost("profiler", features),
        ))

        def select_body(inputs: dict) -> PreparationResult:
            timers = inputs[f"{scene}/timers"]
            fields, truths, profiles = inputs[f"{scene}/profile"]
            with timers.time("solver"):
                selection = self.stage_select(profiles)
            return PreparationResult(
                segmentation=inputs[f"{scene}/segmentation"],
                profiles=profiles,
                selection=selection,
                timers=timers,
                fields=fields,
                truths=truths,
                dataset_name=getattr(inputs[f"{scene}/dataset"], "name", ""),
            )

        dag.add(DagNode(
            name=f"select:{scene}",
            stage="solver",
            scene=scene,
            body=select_body,
            inputs=(
                f"{scene}/dataset",
                f"{scene}/segmentation",
                f"{scene}/profile",
                f"{scene}/timers",
            ),
            outputs=(f"{scene}/preparation",),
            cost=self._stage_node_cost("solver", features),
        ))

        def bake_body(inputs: dict) -> BakedMultiModel:
            return self.bake(inputs[f"{scene}/preparation"])

        dag.add(DagNode(
            name=f"bake:{scene}",
            stage="bake",
            scene=scene,
            body=bake_body,
            inputs=(f"{scene}/preparation",),
            outputs=(f"{scene}/bundle",),
            cost=self._stage_node_cost("bake", features),
        ))

        def deploy_body(inputs: dict) -> DeploymentReport:
            return self.deploy(
                inputs[f"{scene}/bundle"],
                inputs[f"{scene}/dataset"],
                inputs[f"{scene}/preparation"],
            )

        dag.add(DagNode(
            name=f"deploy:{scene}",
            stage="deploy",
            scene=scene,
            body=deploy_body,
            inputs=(
                f"{scene}/bundle",
                f"{scene}/dataset",
                f"{scene}/preparation",
            ),
            outputs=(f"{scene}/report",),
            cost=self._stage_node_cost("deploy", features),
        ))
        return dag

    def _dag_workers(self) -> int:
        """The effective stage-DAG worker count (config, else environment)."""
        workers = self.config.dag_workers
        if workers is None:
            workers = repro_env.REPRO_DAG_WORKERS.get()
        return max(int(workers), 0)

    def run(self, dataset) -> tuple:
        """Full staged pipeline: segment/profile/select, bake, deploy.

        Routed through the stage-DAG scheduler when ``config.dag_workers``
        (or ``REPRO_DAG_WORKERS``) is positive — for a single scene the DAG
        is a chain, so this exercises the DAG machinery without changing
        any output; the sequential staged path remains the default.

        Returns:
            ``(preparation, multi_model, report)``.  Every stage's
            wall-clock lands on ``preparation.timers`` (``segmentation`` /
            ``profiler`` / ``solver`` / ``bake`` / ``deploy``), and the
            report records the split together with the execution backend.
        """
        workers = self._dag_workers()
        if workers > 0:
            scene = getattr(dataset, "name", "") or "scene"
            result = DagScheduler(workers=workers).run(
                self.build_dag(dataset),
                artifacts={f"{scene}/dataset": dataset},
            )
            return (
                result.artifacts[f"{scene}/preparation"],
                result.artifacts[f"{scene}/bundle"],
                result.artifacts[f"{scene}/report"],
            )
        preparation = self.prepare(dataset)
        multi_model = self.bake(preparation)
        report = self.deploy(multi_model, dataset, preparation)
        return preparation, multi_model, report


def run_corpus(jobs, workers: int = 0) -> list:
    """Run several independent ``(pipeline, dataset)`` jobs, optionally
    overlapping their stages on the stage-DAG scheduler.

    Args:
        jobs: ``(pipeline, dataset)`` pairs.  Dataset names must be unique
            (they key the artifact namespace), and with ``workers > 0``
            each job must bring its **own** pipeline instance — a
            pipeline's engine attributes render time to one stage at a
            time, so sharing one across concurrently running scenes would
            cross-credit their timers.
        workers: ``0`` runs the jobs as a plain sequential
            ``pipeline.run(dataset)`` loop — the bit-identity reference;
            ``>= 1`` unions every job's stage chain into one task DAG and
            schedules it on that many workers, so stages of *different*
            scenes overlap while per-scene stage order is preserved.

    Returns:
        One ``(preparation, multi_model, report)`` tuple per job, in job
        order — identical (timings aside) for every ``workers`` value,
        pinned by the golden DAG-parity tier.
    """
    jobs = list(jobs)
    if workers <= 0:
        return [pipeline.run(dataset) for pipeline, dataset in jobs]
    dag = TaskDag()
    seeds: dict = {}
    scenes: list = []
    pipelines: list = []
    for pipeline, dataset in jobs:
        scene = getattr(dataset, "name", "") or "scene"
        if scene in scenes:
            raise DagValidationError(
                f"duplicate scene label {scene!r} in corpus; dataset names "
                "key the artifact namespace and must be unique"
            )
        if any(pipeline is previous for previous in pipelines):
            raise DagValidationError(
                "one pipeline instance appears in several corpus jobs; each "
                "job needs its own (engines attribute render time to one "
                "running stage at a time)"
            )
        pipelines.append(pipeline)
        pipeline.build_dag(dataset, dag=dag)
        seeds[f"{scene}/dataset"] = dataset
        scenes.append(scene)
    result = DagScheduler(workers=workers).run(dag, artifacts=seeds)
    return [
        (
            result.artifacts[f"{scene}/preparation"],
            result.artifacts[f"{scene}/bundle"],
            result.artifacts[f"{scene}/report"],
        )
        for scene in scenes
    ]
