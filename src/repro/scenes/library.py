"""Ready-made scenes mirroring the paper's evaluation workloads.

The paper constructs four simulated scenes of five objects each, ordered by
geometric complexity (§IV-B), plus real-world forward-facing scenes.  This
module rebuilds those workloads from the procedural object library:

* Scene 1 — five objects with the *lowest* geometric complexity;
* Scene 2 — five objects with the *highest* geometric complexity;
* Scene 3 — five objects selected at random;
* Scene 4 — the five exclusively different reference objects
  (hotdog, ficus, chair, ship, lego).
"""

from __future__ import annotations

import numpy as np

from repro.scenes.objects import (
    REFERENCE_OBJECT_NAMES,
    SceneObject,
    make_object,
    list_objects,
)
from repro.scenes import primitives as prim
from repro.scenes.objects import _checker, _stripes  # shared colour helpers
from repro.scenes.scene import PlacedObject, Scene, compose_scene
from repro.utils.rng import make_rng

#: Names of the four simulated multi-object scenes from the paper.
SIMULATED_SCENE_NAMES: tuple = ("scene1", "scene2", "scene3", "scene4")

_LOW_COMPLEXITY_OBJECTS = ("sphere", "cube", "torus", "hotdog", "mug")
_HIGH_COMPLEXITY_OBJECTS = ("lego", "ship", "lego", "ship", "chair")
_REFERENCE_OBJECTS = REFERENCE_OBJECT_NAMES


def make_single_object_scene(name: str, scale: float = 1.0) -> Scene:
    """A scene containing a single centred object (profiler validation)."""
    placed = PlacedObject(
        obj=make_object(name), translation=np.zeros(3), scale=scale, instance_id=0
    )
    return Scene([placed])


def make_simulated_scene(index: int, seed: int = 0, spacing: float = 1.15) -> Scene:
    """Build simulated scene 1–4 as described in the paper's evaluation.

    Args:
        index: scene number, 1 through 4.
        seed: random seed (controls Scene 3's random object selection and
            the small placement jitter).
        spacing: centre-to-centre object spacing.
    """
    if index == 1:
        names = list(_LOW_COMPLEXITY_OBJECTS)
    elif index == 2:
        names = list(_HIGH_COMPLEXITY_OBJECTS)
    elif index == 3:
        rng = make_rng(seed)
        pool = list_objects()
        names = list(rng.choice(pool, size=5, replace=True))
    elif index == 4:
        names = list(_REFERENCE_OBJECTS)
    else:
        raise ValueError(f"simulated scene index must be 1..4, got {index}")
    return compose_scene(names, layout="cluster", spacing=spacing, seed=seed)


def _make_room_backdrop(half_width: float, half_depth: float, height: float) -> SceneObject:
    """Floor plus back wall used by the real-world style scenes."""

    def sdf(points: np.ndarray) -> np.ndarray:
        floor = prim.sdf_box(
            points, (0.0, -0.65, 0.0), (half_width, 0.05, half_depth)
        )
        wall = prim.sdf_box(
            points,
            (0.0, height / 2.0 - 0.65, -half_depth),
            (half_width, height / 2.0, 0.05),
        )
        return prim.sdf_union(floor, wall)

    def albedo(points: np.ndarray) -> np.ndarray:
        floor_pattern = _checker(points, 1.6, (0.62, 0.57, 0.50), (0.52, 0.47, 0.42))
        wall_pattern = _stripes(points, 1.0, 0, (0.78, 0.76, 0.72), (0.72, 0.70, 0.66))
        is_wall = (points[:, 2] < -half_depth + 0.2).astype(np.float64)[:, None]
        return floor_pattern * (1.0 - is_wall) + wall_pattern * is_wall

    return SceneObject(
        name="backdrop",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=(
            (-half_width - 0.1, -0.75, -half_depth - 0.1),
            (half_width + 0.1, height - 0.6, half_depth + 0.1),
        ),
        texture_frequency=1.0,
        complexity_rank=0,
    )


def make_realworld_scene(seed: int = 0, num_objects: int = 4) -> Scene:
    """A forward-facing "real-world" style scene.

    The LLFF real-world scenes cannot be downloaded offline, so this builds
    the closest procedural equivalent: a room backdrop (floor + wall, few
    empty pixels) with several foreground objects of mixed complexity placed
    on the floor and captured with forward-facing cameras.
    """
    if num_objects < 1:
        raise ValueError("num_objects must be at least 1")
    rng = make_rng(seed)
    pool = list(REFERENCE_OBJECT_NAMES)
    chosen = list(rng.choice(pool, size=min(num_objects, len(pool)), replace=False))

    half_width, half_depth, height = 2.4, 1.4, 2.4
    backdrop = PlacedObject(
        obj=_make_room_backdrop(half_width, half_depth, height),
        translation=np.zeros(3),
        scale=1.0,
        instance_id=0,
        instance_name="backdrop",
    )

    placed = [backdrop]
    xs = np.linspace(-half_width * 0.6, half_width * 0.6, len(chosen))
    for index, name in enumerate(chosen):
        obj = make_object(name)
        depth_offset = float(rng.uniform(-0.3, 0.3))
        # Rest the object on the floor (y = -0.6 is the floor surface).
        y_offset = -0.6 - float(obj.bounds_min[1]) * 0.8
        placed.append(
            PlacedObject(
                obj=obj,
                translation=np.array([xs[index], y_offset, depth_offset]),
                scale=0.8,
                instance_id=index + 1,
                instance_name=name,
            )
        )
    return Scene(placed, background_color=(0.9, 0.9, 0.92))
