"""Procedural reference objects.

The paper evaluates on the synthetic 360-degree objects of the original NeRF
dataset (hotdog, ficus, chair, ship, lego, ...).  This module provides
procedural analogues with the same *relative* geometric complexity ordering
(hotdog < ficus < chair < ship < lego, the order used on the x-axis of
Fig. 8a) and controllable texture detail frequency, which is what the
detail-based segmentation module keys on.

Every object is a :class:`SceneObject` exposing

* ``sdf(points)``     — signed distance to the object's surface,
* ``albedo(points)``  — procedural surface colour,
* ``bounds``          — a conservative axis-aligned bounding box,
* ``texture_frequency`` and ``complexity_rank`` metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.scenes import primitives as prim


# ---------------------------------------------------------------------------
# Procedural colour helpers
# ---------------------------------------------------------------------------


def _checker(points: np.ndarray, frequency: float, color_a, color_b) -> np.ndarray:
    """3D checkerboard pattern between two colours."""
    color_a = np.asarray(color_a, dtype=np.float64)
    color_b = np.asarray(color_b, dtype=np.float64)
    cells = np.floor(points * frequency).astype(int)
    parity = (cells.sum(axis=1) % 2).astype(np.float64)[:, None]
    return color_a * (1.0 - parity) + color_b * parity


def _stripes(points: np.ndarray, frequency: float, axis: int, color_a, color_b) -> np.ndarray:
    """Sinusoidal stripes along one axis, blended between two colours."""
    color_a = np.asarray(color_a, dtype=np.float64)
    color_b = np.asarray(color_b, dtype=np.float64)
    phase = 0.5 + 0.5 * np.sin(2.0 * np.pi * frequency * points[:, axis])
    return color_a * (1.0 - phase[:, None]) + color_b * phase[:, None]


def _speckle(points: np.ndarray, frequency: float, base, amplitude: float) -> np.ndarray:
    """High-frequency multiplicative speckle over a base colour."""
    base = np.asarray(base, dtype=np.float64)
    modulation = (
        np.sin(2.0 * np.pi * frequency * points[:, 0])
        * np.sin(2.0 * np.pi * frequency * points[:, 1] + 1.3)
        * np.sin(2.0 * np.pi * frequency * points[:, 2] + 2.1)
    )
    factor = 1.0 + amplitude * modulation
    return np.clip(base[None, :] * factor[:, None], 0.0, 1.0)


# ---------------------------------------------------------------------------
# SceneObject
# ---------------------------------------------------------------------------


@dataclass
class SceneObject:
    """A procedural object defined by an SDF and an albedo function.

    Attributes:
        name: unique object name (e.g. ``"lego"``).
        sdf_fn: ``(N, 3) points -> (N,) signed distances``.
        albedo_fn: ``(N, 3) points -> (N, 3) RGB in [0, 1]``.
        bounds: ``(min_xyz, max_xyz)`` conservative bounding box.
        texture_frequency: characteristic spatial frequency of the surface
            texture; higher values produce more high-frequency image detail.
        complexity_rank: integer rank used to order objects by 3D geometric
            complexity (matches the paper's hotdog < ficus < chair < ship <
            lego ordering).
    """

    name: str
    sdf_fn: Callable[[np.ndarray], np.ndarray]
    albedo_fn: Callable[[np.ndarray], np.ndarray]
    bounds: tuple = field(default=((-0.6, -0.6, -0.6), (0.6, 0.6, 0.6)))
    texture_frequency: float = 2.0
    complexity_rank: int = 0
    #: The library's object SDFs are exact primitives composed with
    #: min/max, so they are 1-Lipschitz (the hierarchical voxeliser's
    #: pruning bound relies on this being advertised).
    sdf_lipschitz: float = 1.0

    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Signed distance from each point to the object surface."""
        return self.sdf_fn(np.asarray(points, dtype=np.float64))

    def albedo(self, points: np.ndarray) -> np.ndarray:
        """Surface colour at each point."""
        return self.albedo_fn(np.asarray(points, dtype=np.float64))

    @property
    def bounds_min(self) -> np.ndarray:
        return np.asarray(self.bounds[0], dtype=np.float64)

    @property
    def bounds_max(self) -> np.ndarray:
        return np.asarray(self.bounds[1], dtype=np.float64)

    def occupancy(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy (inside-surface test) at each point."""
        return self.sdf(points) <= 0.0


# ---------------------------------------------------------------------------
# Reference objects (ascending geometric complexity)
# ---------------------------------------------------------------------------


def make_hotdog() -> SceneObject:
    """Lowest-complexity reference object: a sausage in a bun on a plate."""

    def sdf(points: np.ndarray) -> np.ndarray:
        sausage = prim.sdf_capsule(points, (-0.28, 0.12, 0.0), (0.28, 0.12, 0.0), 0.07)
        bun = prim.sdf_rounded_box(points, (0.0, 0.0, 0.0), (0.36, 0.09, 0.16), 0.05)
        plate = prim.sdf_cylinder(points, (0.0, -0.12, 0.0), 0.45, 0.02)
        return prim.sdf_union(sausage, bun, plate)

    def albedo(points: np.ndarray) -> np.ndarray:
        sausage = prim.sdf_capsule(points, (-0.28, 0.12, 0.0), (0.28, 0.12, 0.0), 0.07)
        bun = prim.sdf_rounded_box(points, (0.0, 0.0, 0.0), (0.36, 0.09, 0.16), 0.05)
        colors = np.tile(np.array([0.85, 0.82, 0.75]), (points.shape[0], 1))  # plate
        colors[bun <= 0.02] = np.array([0.82, 0.62, 0.32])  # bun
        colors[sausage <= 0.02] = np.array([0.62, 0.22, 0.12])  # sausage
        return colors

    return SceneObject(
        name="hotdog",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.5, -0.2, -0.5), (0.5, 0.3, 0.5)),
        texture_frequency=1.5,
        complexity_rank=1,
    )


def make_ficus() -> SceneObject:
    """A potted plant: pot, trunk and a cluster of foliage blobs."""

    foliage_centers = np.array(
        [
            (0.0, 0.32, 0.0),
            (0.16, 0.26, 0.06),
            (-0.14, 0.28, -0.08),
            (0.05, 0.40, -0.12),
            (-0.06, 0.38, 0.13),
            (0.14, 0.40, 0.10),
            (-0.16, 0.40, 0.02),
        ]
    )
    foliage_radius = 0.11

    def sdf(points: np.ndarray) -> np.ndarray:
        pot = prim.sdf_cylinder(points, (0.0, -0.30, 0.0), 0.16, 0.12)
        trunk = prim.sdf_capsule(points, (0.0, -0.2, 0.0), (0.0, 0.28, 0.0), 0.035)
        blobs = [
            prim.sdf_sphere(points, center, foliage_radius)
            for center in foliage_centers
        ]
        return prim.sdf_union(pot, trunk, *blobs)

    def albedo(points: np.ndarray) -> np.ndarray:
        pot = prim.sdf_cylinder(points, (0.0, -0.30, 0.0), 0.16, 0.12)
        trunk = prim.sdf_capsule(points, (0.0, -0.2, 0.0), (0.0, 0.28, 0.0), 0.035)
        leaves = _speckle(points, 9.0, (0.18, 0.45, 0.16), 0.55)
        colors = leaves
        colors[trunk <= 0.02] = np.array([0.36, 0.24, 0.12])
        colors[pot <= 0.02] = np.array([0.68, 0.36, 0.22])
        return colors

    return SceneObject(
        name="ficus",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.45, -0.45, -0.45), (0.45, 0.55, 0.45)),
        texture_frequency=4.0,
        complexity_rank=2,
    )


def make_chair() -> SceneObject:
    """A chair: seat, backrest, four legs and slat details on the back."""

    leg_offsets = [(-0.22, -0.22), (-0.22, 0.22), (0.22, -0.22), (0.22, 0.22)]

    def sdf(points: np.ndarray) -> np.ndarray:
        seat = prim.sdf_box(points, (0.0, 0.0, 0.0), (0.26, 0.03, 0.26))
        back = prim.sdf_box(points, (0.0, 0.24, -0.24), (0.26, 0.24, 0.025))
        legs = [
            prim.sdf_box(points, (dx, -0.22, dz), (0.03, 0.22, 0.03))
            for dx, dz in leg_offsets
        ]
        # Slats: vertical cut-outs in the backrest create repeated detail.
        repeated = prim.repeat_xz(points - np.array([0.0, 0.0, 0.0]), 0.12)
        slots = prim.sdf_box(
            repeated + np.array([0.0, -0.26, 0.24]), (0.0, 0.0, 0.0), (0.025, 0.16, 0.08)
        )
        back = prim.sdf_subtraction(back, slots)
        return prim.sdf_union(seat, back, *legs)

    def albedo(points: np.ndarray) -> np.ndarray:
        return _stripes(points, 6.0, 0, (0.55, 0.36, 0.18), (0.40, 0.24, 0.10))

    return SceneObject(
        name="chair",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.4, -0.5, -0.4), (0.4, 0.55, 0.4)),
        texture_frequency=6.0,
        complexity_rank=3,
    )


def make_ship() -> SceneObject:
    """A sailing ship: hull, deck, masts, sails and repeated railing posts."""

    def sdf(points: np.ndarray) -> np.ndarray:
        hull_outer = prim.sdf_box(points, (0.0, -0.16, 0.0), (0.42, 0.12, 0.15))
        hull_cut = prim.sdf_box(points, (0.0, -0.06, 0.0), (0.38, 0.10, 0.11))
        hull = prim.sdf_subtraction(hull_outer, hull_cut)
        keel = prim.sdf_box(points, (0.0, -0.30, 0.0), (0.30, 0.05, 0.04))
        mast_main = prim.sdf_cylinder(points, (0.05, 0.16, 0.0), 0.02, 0.34)
        mast_fore = prim.sdf_cylinder(points, (-0.26, 0.08, 0.0), 0.016, 0.24)
        sail_main = prim.sdf_box(points, (0.05, 0.22, 0.0), (0.015, 0.20, 0.13))
        sail_fore = prim.sdf_box(points, (-0.26, 0.14, 0.0), (0.012, 0.14, 0.10))
        bowsprit = prim.sdf_capsule(points, (0.40, -0.02, 0.0), (0.52, 0.06, 0.0), 0.015)
        # Railing posts: repeated thin cylinders along the deck edges.
        repeated = prim.repeat_xz(points, 0.08)
        posts = prim.sdf_cylinder(repeated - np.array([0.0, -0.01, 0.0]), (0, 0, 0), 0.008, 0.05)
        rail_band = prim.sdf_box(points, (0.0, -0.01, 0.0), (0.40, 0.06, 0.15))
        rail_shell = prim.sdf_subtraction(
            rail_band, prim.sdf_box(points, (0.0, -0.01, 0.0), (0.37, 0.08, 0.12))
        )
        railing = prim.sdf_intersection(posts, rail_shell)
        return prim.sdf_union(
            hull, keel, mast_main, mast_fore, sail_main, sail_fore, bowsprit, railing
        )

    def albedo(points: np.ndarray) -> np.ndarray:
        planks = _stripes(points, 14.0, 0, (0.45, 0.30, 0.16), (0.30, 0.19, 0.10))
        sails = np.array([0.92, 0.90, 0.84])
        colors = planks
        sail_main = prim.sdf_box(points, (0.05, 0.22, 0.0), (0.015, 0.20, 0.13))
        sail_fore = prim.sdf_box(points, (-0.26, 0.14, 0.0), (0.012, 0.14, 0.10))
        sail_mask = np.minimum(sail_main, sail_fore) <= 0.02
        colors[sail_mask] = sails
        return colors

    return SceneObject(
        name="ship",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.6, -0.45, -0.35), (0.6, 0.55, 0.35)),
        texture_frequency=10.0,
        complexity_rank=4,
    )


def make_lego() -> SceneObject:
    """Highest-complexity reference object: a studded brick assembly.

    Domain repetition creates a dense grid of studs and plate gaps, giving
    this object both the highest geometric complexity (most quad faces at a
    given voxel granularity) and the highest texture frequency.
    """

    def sdf(points: np.ndarray) -> np.ndarray:
        base = prim.sdf_box(points, (0.0, -0.20, 0.0), (0.38, 0.06, 0.28))
        tower = prim.sdf_box(points, (-0.12, 0.02, 0.0), (0.14, 0.16, 0.14))
        arm = prim.sdf_box(points, (0.20, -0.02, 0.0), (0.18, 0.05, 0.10))
        cab = prim.sdf_box(points, (-0.12, 0.26, 0.0), (0.10, 0.08, 0.10))
        # Studs on every top surface via XZ domain repetition.
        repeated = prim.repeat_xz(points, 0.09)
        stud_base = prim.sdf_cylinder(
            repeated - np.array([0.0, -0.115, 0.0]), (0, 0, 0), 0.028, 0.025
        )
        stud_band_base = prim.sdf_box(points, (0.0, -0.115, 0.0), (0.38, 0.03, 0.28))
        studs_base = prim.sdf_intersection(stud_base, stud_band_base)
        stud_tower = prim.sdf_cylinder(
            repeated - np.array([0.0, 0.205, 0.0]), (0, 0, 0), 0.028, 0.025
        )
        stud_band_tower = prim.sdf_box(points, (-0.12, 0.205, 0.0), (0.14, 0.03, 0.14))
        studs_tower = prim.sdf_intersection(stud_tower, stud_band_tower)
        # Anti-stud grooves on the side walls for extra geometric detail.
        grooves = prim.sdf_box(
            prim.repeat_xz(points, 0.07), (0.0, -0.2, 0.0), (0.012, 0.05, 0.40)
        )
        base = prim.sdf_subtraction(base, grooves)
        return prim.sdf_union(base, tower, arm, cab, studs_base, studs_tower)

    def albedo(points: np.ndarray) -> np.ndarray:
        bricks = _checker(points, 11.0, (0.80, 0.70, 0.20), (0.16, 0.35, 0.72))
        accents = _checker(points, 22.0, (0.75, 0.16, 0.12), (0.80, 0.70, 0.20))
        # Blend: upper parts use the finer accent pattern.
        upper = (points[:, 1] > 0.0).astype(np.float64)[:, None]
        return bricks * (1.0 - upper) + accents * upper

    return SceneObject(
        name="lego",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.55, -0.40, -0.45), (0.55, 0.45, 0.45)),
        texture_frequency=16.0,
        complexity_rank=5,
    )


# ---------------------------------------------------------------------------
# Simple auxiliary objects (used for low-complexity scenes and unit tests)
# ---------------------------------------------------------------------------


def make_sphere(radius: float = 0.35, frequency: float = 2.0) -> SceneObject:
    """A single textured sphere (the simplest possible object)."""

    def sdf(points: np.ndarray) -> np.ndarray:
        return prim.sdf_sphere(points, (0.0, 0.0, 0.0), radius)

    def albedo(points: np.ndarray) -> np.ndarray:
        return _stripes(points, frequency, 1, (0.78, 0.30, 0.25), (0.90, 0.80, 0.60))

    return SceneObject(
        name="sphere",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.45, -0.45, -0.45), (0.45, 0.45, 0.45)),
        texture_frequency=frequency,
        complexity_rank=0,
    )


def make_cube(half: float = 0.3, frequency: float = 3.0) -> SceneObject:
    """A single textured cube."""

    def sdf(points: np.ndarray) -> np.ndarray:
        return prim.sdf_box(points, (0.0, 0.0, 0.0), (half, half, half))

    def albedo(points: np.ndarray) -> np.ndarray:
        return _checker(points, frequency, (0.25, 0.55, 0.80), (0.90, 0.90, 0.88))

    return SceneObject(
        name="cube",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.4, -0.4, -0.4), (0.4, 0.4, 0.4)),
        texture_frequency=frequency,
        complexity_rank=0,
    )


def make_torus(frequency: float = 5.0) -> SceneObject:
    """A textured torus (donut), moderate complexity."""

    def sdf(points: np.ndarray) -> np.ndarray:
        return prim.sdf_torus(points, (0.0, 0.0, 0.0), 0.28, 0.10)

    def albedo(points: np.ndarray) -> np.ndarray:
        return _checker(points, frequency, (0.85, 0.55, 0.70), (0.55, 0.25, 0.40))

    return SceneObject(
        name="torus",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.45, -0.25, -0.45), (0.45, 0.25, 0.45)),
        texture_frequency=frequency,
        complexity_rank=1,
    )


def make_mug(frequency: float = 7.0) -> SceneObject:
    """A mug: a hollow cylinder with a torus handle."""

    def sdf(points: np.ndarray) -> np.ndarray:
        body = prim.sdf_cylinder(points, (0.0, 0.0, 0.0), 0.22, 0.26)
        hollow = prim.sdf_cylinder(points, (0.0, 0.04, 0.0), 0.18, 0.26)
        body = prim.sdf_subtraction(body, hollow)
        # Handle: torus rotated into the XY plane (swap y/z in the query).
        swapped = np.asarray(points, dtype=np.float64)[:, [0, 2, 1]]
        handle = prim.sdf_torus(swapped, (0.28, 0.0, 0.0), 0.12, 0.035)
        return prim.sdf_union(body, handle)

    def albedo(points: np.ndarray) -> np.ndarray:
        return _stripes(points, frequency, 1, (0.20, 0.45, 0.65), (0.92, 0.92, 0.90))

    return SceneObject(
        name="mug",
        sdf_fn=sdf,
        albedo_fn=albedo,
        bounds=((-0.35, -0.35, -0.35), (0.45, 0.35, 0.35)),
        texture_frequency=frequency,
        complexity_rank=2,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

OBJECT_LIBRARY: dict = {
    "hotdog": make_hotdog,
    "ficus": make_ficus,
    "chair": make_chair,
    "ship": make_ship,
    "lego": make_lego,
    "sphere": make_sphere,
    "cube": make_cube,
    "torus": make_torus,
    "mug": make_mug,
}

#: The five objects used in the paper's Scene 4 / Fig. 8, ordered by
#: ascending 3D geometric complexity (the paper's x-axis ordering).
REFERENCE_OBJECT_NAMES: tuple = ("hotdog", "ficus", "chair", "ship", "lego")


def list_objects() -> list:
    """Names of all available procedural objects."""
    return sorted(OBJECT_LIBRARY)


def make_object(name: str) -> SceneObject:
    """Instantiate a library object by name.

    Raises ``KeyError`` with the available names if ``name`` is unknown.
    """
    try:
        factory = OBJECT_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown object {name!r}; available: {', '.join(list_objects())}"
        ) from None
    return factory()
