"""Synthetic scene substrate.

The paper trains and evaluates on (a) synthetic 360-degree objects from the
original NeRF dataset and (b) real-world forward-facing scenes from LLFF.
Neither dataset can be downloaded offline, so this package provides
procedural analogues built from signed-distance functions (SDFs) with
controllable geometric complexity and texture frequency, plus a ground-truth
ray tracer that produces the training/testing image sets (and instance-ID
buffers) every downstream module consumes.
"""

from repro.scenes.primitives import (
    sdf_sphere,
    sdf_box,
    sdf_rounded_box,
    sdf_torus,
    sdf_cylinder,
    sdf_capsule,
    sdf_union,
    sdf_intersection,
    sdf_subtraction,
    repeat_xz,
)
from repro.scenes.objects import (
    SceneObject,
    OBJECT_LIBRARY,
    REFERENCE_OBJECT_NAMES,
    make_object,
    list_objects,
)
from repro.scenes.scene import PlacedObject, Scene, compose_scene
from repro.scenes.cameras import Camera, orbit_cameras, forward_facing_cameras, camera_rays
from repro.scenes.raytrace import RenderResult, render_scene, render_field
from repro.scenes.dataset import SceneDataset, generate_dataset
from repro.scenes.library import (
    make_simulated_scene,
    make_realworld_scene,
    make_single_object_scene,
    SIMULATED_SCENE_NAMES,
)

__all__ = [
    "sdf_sphere",
    "sdf_box",
    "sdf_rounded_box",
    "sdf_torus",
    "sdf_cylinder",
    "sdf_capsule",
    "sdf_union",
    "sdf_intersection",
    "sdf_subtraction",
    "repeat_xz",
    "SceneObject",
    "OBJECT_LIBRARY",
    "REFERENCE_OBJECT_NAMES",
    "make_object",
    "list_objects",
    "PlacedObject",
    "Scene",
    "compose_scene",
    "Camera",
    "orbit_cameras",
    "forward_facing_cameras",
    "camera_rays",
    "RenderResult",
    "render_scene",
    "render_field",
    "SceneDataset",
    "generate_dataset",
    "make_simulated_scene",
    "make_realworld_scene",
    "make_single_object_scene",
    "SIMULATED_SCENE_NAMES",
]
