"""Ground-truth renderer: sphere tracing against scene SDFs.

This renderer plays the role of the physical capture process in the paper:
it produces the RGB training/test images, depth maps and per-pixel instance
IDs that the segmentation module, the NeRF trainer and the quality metrics
consume.  It is also used as the reference ("ground truth") against which
every baked representation's SSIM/PSNR/LPIPS is computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenes.cameras import Camera
from repro.scenes.scene import Scene

#: Default directional light used for Lambertian shading.
_LIGHT_DIRECTION = np.array([0.45, 0.8, 0.35])
_LIGHT_DIRECTION = _LIGHT_DIRECTION / np.linalg.norm(_LIGHT_DIRECTION)
_AMBIENT = 0.35
_DIFFUSE = 0.65


@dataclass
class RenderResult:
    """Output buffers of one rendered view.

    Attributes:
        rgb: ``(H, W, 3)`` image in [0, 1].
        depth: ``(H, W)`` distance from the camera to the first hit
            (``inf`` where the ray missed everything).
        object_ids: ``(H, W)`` instance-ID buffer (``-1`` for background).
        hit_mask: ``(H, W)`` boolean, true where a surface was hit.
    """

    rgb: np.ndarray
    depth: np.ndarray
    object_ids: np.ndarray
    hit_mask: np.ndarray

    @property
    def height(self) -> int:
        return int(self.rgb.shape[0])

    @property
    def width(self) -> int:
        return int(self.rgb.shape[1])

    def object_mask(self, instance_id: int) -> np.ndarray:
        """Boolean mask of the pixels covered by one object instance."""
        return self.object_ids == int(instance_id)


def estimate_normals(field, points: np.ndarray, epsilon: float = 1e-3) -> np.ndarray:
    """Central-difference surface normals of a field's SDF."""
    points = np.asarray(points, dtype=np.float64)
    normals = np.zeros_like(points)
    for axis in range(3):
        offset = np.zeros(3)
        offset[axis] = epsilon
        normals[:, axis] = field.sdf(points + offset) - field.sdf(points - offset)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return normals / norms


def field_radiance(field, points: np.ndarray, normal_epsilon: float = 1e-3) -> np.ndarray:
    """Shaded surface radiance of a field at the given points.

    Combines the field's albedo with Lambertian shading under the fixed
    scene light — the same shading model the ground-truth renderer uses, so
    representations that store radiance (baked textures, volume renderers)
    are directly comparable to ground-truth images.
    """
    normals = estimate_normals(field, points, epsilon=normal_epsilon)
    return shade_lambertian(field.albedo(points), normals)


def shade_lambertian(albedo: np.ndarray, normals: np.ndarray) -> np.ndarray:
    """Simple Lambertian shading with a fixed directional light."""
    diffuse = np.clip(normals @ _LIGHT_DIRECTION, 0.0, 1.0)
    return np.clip(albedo * (_AMBIENT + _DIFFUSE * diffuse[:, None]), 0.0, 1.0)


def render_field(
    field,
    camera: Camera,
    background=(1.0, 1.0, 1.0),
    max_steps: int = 96,
    hit_epsilon: float = 2e-3,
    max_distance: "float | None" = None,
) -> RenderResult:
    """Sphere-trace and shade any field-protocol object (SDF + albedo).

    Unlike :func:`render_scene`, this works for fields that are not scenes —
    trained or degraded radiance fields — and therefore cannot attribute
    pixels to object instances (``object_ids`` is 0 where a surface was hit
    and -1 elsewhere).  It is the rendering path of the workstation-class
    baseline emulators (Instant-NGP, Mip-NeRF 360).

    This is a thin wrapper over the shared :class:`~repro.render.RenderEngine`
    (see :mod:`repro.render`); use the engine directly for cross-view
    batching and render caching.
    """
    from repro.render.engine import default_engine

    return default_engine().render_field(
        field,
        camera,
        background=background,
        max_steps=max_steps,
        hit_epsilon=hit_epsilon,
        max_distance=max_distance,
    )


def render_scene(
    scene: Scene,
    camera: Camera,
    max_steps: int = 96,
    hit_epsilon: float = 2e-3,
    max_distance: "float | None" = None,
    shading: bool = True,
) -> RenderResult:
    """Render one view of a scene by sphere tracing its SDF.

    Args:
        scene: the scene to render.
        camera: viewpoint and image resolution.
        max_steps: maximum sphere-tracing iterations per ray.
        hit_epsilon: distance threshold below which a ray is considered to
            have hit a surface.
        max_distance: rays are terminated beyond this distance (defaults to
            four times the scene extent).
        shading: when false, the raw albedo is returned without lighting
            (useful for texture-frequency analysis in isolation).

    This is a thin wrapper over the shared :class:`~repro.render.RenderEngine`
    (see :mod:`repro.render`); use the engine directly for cross-view
    batching and render caching.
    """
    from repro.render.engine import default_engine

    return default_engine().render_scene(
        scene,
        camera,
        max_steps=max_steps,
        hit_epsilon=hit_epsilon,
        max_distance=max_distance,
        shading=shading,
    )
