"""Training / testing datasets generated from procedural scenes.

A :class:`SceneDataset` bundles everything the NeRFlex pipeline consumes:
the scene definition, the training views (RGB images plus instance-ID
buffers standing in for the photos fed to the segmentation module) and the
held-out test views used to score rendering quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scenes.cameras import Camera, forward_facing_cameras, orbit_cameras
from repro.scenes.raytrace import RenderResult
from repro.scenes.scene import Scene


@dataclass
class SceneDataset:
    """A scene with rendered training and testing views.

    Attributes:
        scene: the underlying procedural scene.
        train_cameras / test_cameras: camera poses.
        train_views / test_views: :class:`RenderResult` per camera (RGB,
            depth, instance-ID buffer, hit mask).
        name: human-readable dataset name (e.g. ``"scene3"``).
    """

    scene: Scene
    train_cameras: list
    train_views: list
    test_cameras: list
    test_views: list
    name: str = "scene"

    @property
    def num_train(self) -> int:
        return len(self.train_views)

    @property
    def num_test(self) -> int:
        return len(self.test_views)

    @property
    def train_images(self) -> list:
        return [view.rgb for view in self.train_views]

    @property
    def test_images(self) -> list:
        return [view.rgb for view in self.test_views]

    def describe(self) -> dict:
        """Summary dictionary (object names, view counts, resolution)."""
        resolution = (
            (self.train_views[0].height, self.train_views[0].width)
            if self.train_views
            else (0, 0)
        )
        return {
            "name": self.name,
            "objects": list(self.scene.instance_names),
            "num_train": self.num_train,
            "num_test": self.num_test,
            "resolution": resolution,
        }


def generate_dataset(
    scene: Scene,
    num_train: int = 12,
    num_test: int = 3,
    resolution: int = 96,
    trajectory: str = "orbit",
    elevation_deg: float = 25.0,
    fov_deg: float = 50.0,
    name: str = "scene",
    camera_distance_scale: float = 1.35,
) -> SceneDataset:
    """Render training and testing views of a scene.

    Args:
        scene: the scene to capture.
        num_train / num_test: number of training / held-out test views.
        resolution: square image resolution in pixels.
        trajectory: ``"orbit"`` for 360-degree object capture (synthetic
            scenes), ``"forward"`` for LLFF-style forward-facing capture
            (real-world scenes).
        elevation_deg: orbit elevation angle.
        fov_deg: camera field of view.
        name: dataset name.
        camera_distance_scale: camera distance as a multiple of the scene
            extent.
    """
    center = scene.center
    extent = scene.extent
    distance = camera_distance_scale * extent

    if trajectory == "orbit":
        train_cameras = orbit_cameras(
            center,
            radius=distance,
            count=num_train,
            elevation_deg=elevation_deg,
            width=resolution,
            height=resolution,
            fov_deg=fov_deg,
        )
        test_cameras = orbit_cameras(
            center,
            radius=distance,
            count=num_test,
            elevation_deg=elevation_deg + 10.0,
            width=resolution,
            height=resolution,
            fov_deg=fov_deg,
        )
    elif trajectory == "forward":
        train_cameras = forward_facing_cameras(
            center,
            distance=distance,
            count=num_train,
            width=resolution,
            height=resolution,
            fov_deg=fov_deg,
        )
        test_cameras = forward_facing_cameras(
            center,
            distance=distance * 1.05,
            count=num_test,
            spread=0.4,
            width=resolution,
            height=resolution,
            fov_deg=fov_deg,
        )
    else:
        raise ValueError(f"unknown trajectory {trajectory!r}; use 'orbit' or 'forward'")

    # One cross-view ray batch per split: all cameras march together.
    from repro.render.engine import default_engine

    engine = default_engine()
    train_views = engine.render_scene_views(scene, train_cameras)
    test_views = engine.render_scene_views(scene, test_cameras)
    return SceneDataset(
        scene=scene,
        train_cameras=train_cameras,
        train_views=train_views,
        test_cameras=test_cameras,
        test_views=test_views,
        name=name,
    )
