"""Scene composition: placed object instances and multi-object scenes.

A :class:`Scene` is a collection of :class:`PlacedObject` instances (an
object from :mod:`repro.scenes.objects` plus a rigid placement and scale).
Both classes implement the *field protocol* used across the library:

* ``sdf(points)``    — signed distance,
* ``albedo(points)`` — surface colour,
* ``bounds_min`` / ``bounds_max`` — axis-aligned bounds.

The ground-truth ray tracer, the voxel baker and the radiance-field trainer
all consume this protocol, so a whole scene, a single placed object and a
"joint" sub-scene of several objects can each be rendered, baked or learned
with the same code paths — exactly the property NeRFlex's multi-NeRF
decomposition relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scenes.objects import SceneObject, make_object
from repro.utils.rng import make_rng


@dataclass
class PlacedObject:
    """An object instance placed in a scene.

    Attributes:
        obj: the underlying procedural object.
        translation: world-space translation of the object origin.
        scale: uniform scale factor applied to the object.
        instance_id: unique non-negative integer identifier within the scene
            (also written into the ray tracer's instance-ID buffer).
        instance_name: unique name within the scene (defaults to the object
            name, with a suffix when the same object appears twice).
    """

    obj: SceneObject
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))
    scale: float = 1.0
    instance_id: int = 0
    instance_name: str = ""

    def __post_init__(self) -> None:
        self.translation = np.asarray(self.translation, dtype=np.float64)
        if self.translation.shape != (3,):
            raise ValueError("translation must be a 3-vector")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not self.instance_name:
            self.instance_name = self.obj.name

    def _to_local(self, points: np.ndarray) -> np.ndarray:
        return (np.asarray(points, dtype=np.float64) - self.translation) / self.scale

    @property
    def sdf_lipschitz(self) -> float:
        """Uniform scaling and translation preserve the object's bound."""
        return float(getattr(self.obj, "sdf_lipschitz", 1.0))

    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Signed distance in world space (scale-corrected)."""
        return self.obj.sdf(self._to_local(points)) * self.scale

    def albedo(self, points: np.ndarray) -> np.ndarray:
        """Surface colour at world-space points."""
        return self.obj.albedo(self._to_local(points))

    @property
    def bounds_min(self) -> np.ndarray:
        return self.translation + self.scale * self.obj.bounds_min

    @property
    def bounds_max(self) -> np.ndarray:
        return self.translation + self.scale * self.obj.bounds_max

    @property
    def texture_frequency(self) -> float:
        return self.obj.texture_frequency

    @property
    def complexity_rank(self) -> int:
        return self.obj.complexity_rank


class Scene:
    """A multi-object scene composed of placed object instances."""

    def __init__(self, placed_objects: list, background_color=(1.0, 1.0, 1.0)) -> None:
        if not placed_objects:
            raise ValueError("a Scene needs at least one placed object")
        names = [placed.instance_name for placed in placed_objects]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate instance names in scene: {names}")
        ids = [placed.instance_id for placed in placed_objects]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate instance ids in scene: {ids}")
        self.placed = list(placed_objects)
        self.background_color = np.asarray(background_color, dtype=np.float64)

    # -- field protocol ----------------------------------------------------

    @property
    def sdf_lipschitz(self) -> float:
        """A min-union of SDFs keeps the largest member bound."""
        return max(
            float(getattr(placed, "sdf_lipschitz", 1.0)) for placed in self.placed
        )

    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Signed distance to the closest surface of any object."""
        distances = np.stack([placed.sdf(points) for placed in self.placed], axis=0)
        return distances.min(axis=0)

    def albedo(self, points: np.ndarray) -> np.ndarray:
        """Colour of the closest object at each point."""
        distances = np.stack([placed.sdf(points) for placed in self.placed], axis=0)
        owner = distances.argmin(axis=0)
        colors = np.zeros((points.shape[0], 3))
        for index, placed in enumerate(self.placed):
            mask = owner == index
            if mask.any():
                colors[mask] = placed.albedo(np.asarray(points)[mask])
        return colors

    @property
    def bounds_min(self) -> np.ndarray:
        return np.min([placed.bounds_min for placed in self.placed], axis=0)

    @property
    def bounds_max(self) -> np.ndarray:
        return np.max([placed.bounds_max for placed in self.placed], axis=0)

    # -- scene queries -------------------------------------------------------

    def classify(self, points: np.ndarray) -> tuple:
        """Return ``(distance, instance_id)`` of the nearest object per point."""
        distances = np.stack([placed.sdf(points) for placed in self.placed], axis=0)
        owner_index = distances.argmin(axis=0)
        ids = np.array([placed.instance_id for placed in self.placed])
        return distances.min(axis=0), ids[owner_index]

    @property
    def instance_ids(self) -> list:
        return [placed.instance_id for placed in self.placed]

    @property
    def instance_names(self) -> list:
        return [placed.instance_name for placed in self.placed]

    def by_id(self, instance_id: int) -> PlacedObject:
        """Look up a placed object by its instance id."""
        for placed in self.placed:
            if placed.instance_id == instance_id:
                return placed
        raise KeyError(f"no placed object with instance_id={instance_id}")

    def by_name(self, instance_name: str) -> PlacedObject:
        """Look up a placed object by its instance name."""
        for placed in self.placed:
            if placed.instance_name == instance_name:
                return placed
        raise KeyError(f"no placed object named {instance_name!r}")

    def subset(self, instance_ids: list) -> "Scene":
        """A new scene containing only the given instances.

        Used to form the "joint NeRF" sub-scene of all low-frequency objects
        that NeRFlex represents with a single shared network.
        """
        selected = [placed for placed in self.placed if placed.instance_id in set(instance_ids)]
        if not selected:
            raise ValueError(f"subset: no instances matched {instance_ids}")
        return Scene(selected, background_color=self.background_color)

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.bounds_min + self.bounds_max)

    @property
    def extent(self) -> float:
        return float(np.max(self.bounds_max - self.bounds_min))

    def __len__(self) -> int:
        return len(self.placed)

    def __repr__(self) -> str:
        names = ", ".join(self.instance_names)
        return f"Scene([{names}])"


def _unique_names(names: list) -> list:
    """Make object names unique by appending an index to repeats."""
    counts: dict = {}
    result = []
    for name in names:
        counts[name] = counts.get(name, 0) + 1
        if counts[name] == 1:
            result.append(name)
        else:
            result.append(f"{name}_{counts[name]}")
    return result


def compose_scene(
    objects: list,
    layout: str = "circle",
    spacing: float = 1.4,
    scale: float = 1.0,
    seed: "int | None" = 0,
    background_color=(1.0, 1.0, 1.0),
) -> Scene:
    """Place a list of objects into a scene.

    Args:
        objects: object names (looked up in the library) or
            :class:`SceneObject` instances.
        layout: ``"cluster"`` (one object at the centre, the rest packed on
            a tight ring around it — the compact layout used for the paper's
            simulated 360-degree scenes), ``"circle"``, ``"line"`` or
            ``"grid"``.
        spacing: centre-to-centre distance between neighbouring objects.
        scale: uniform scale applied to every object.
        seed: randomises small placement jitter (``None`` disables jitter).
        background_color: colour returned for rays that miss every object.
    """
    instantiated = [
        make_object(item) if isinstance(item, str) else item for item in objects
    ]
    if not instantiated:
        raise ValueError("compose_scene: need at least one object")
    rng = make_rng(seed)
    count = len(instantiated)
    positions = []
    if layout == "cluster":
        positions = [np.zeros(3)]
        if count > 1:
            angles = np.linspace(0.0, 2.0 * np.pi, count - 1, endpoint=False)
            positions += [
                np.array([spacing * np.cos(a), 0.0, spacing * np.sin(a)])
                for a in angles
            ]
    elif layout == "circle":
        if count == 1:
            positions = [np.zeros(3)]
        else:
            radius = spacing * count / (2.0 * np.pi) + 0.4 * spacing
            angles = np.linspace(0.0, 2.0 * np.pi, count, endpoint=False)
            positions = [
                np.array([radius * np.cos(a), 0.0, radius * np.sin(a)]) for a in angles
            ]
    elif layout == "line":
        offset = -(count - 1) / 2.0
        positions = [
            np.array([(offset + index) * spacing, 0.0, 0.0]) for index in range(count)
        ]
    elif layout == "grid":
        cols = int(np.ceil(np.sqrt(count)))
        positions = []
        for index in range(count):
            row, col = divmod(index, cols)
            positions.append(np.array([col * spacing, 0.0, row * spacing]))
        centroid = np.mean(positions, axis=0)
        positions = [pos - centroid for pos in positions]
    else:
        raise ValueError(
            f"unknown layout {layout!r}; use 'cluster', 'circle', 'line' or 'grid'"
        )

    if seed is not None:
        jitter = rng.uniform(-0.08, 0.08, size=(count, 3)) * spacing
        jitter[:, 1] = 0.0
        positions = [pos + j for pos, j in zip(positions, jitter)]

    names = _unique_names([obj.name for obj in instantiated])
    placed = [
        PlacedObject(
            obj=obj,
            translation=pos,
            scale=scale,
            instance_id=index,
            instance_name=name,
        )
        for index, (obj, pos, name) in enumerate(zip(instantiated, positions, names))
    ]
    return Scene(placed, background_color=background_color)
