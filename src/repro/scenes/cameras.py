"""Pinhole cameras and pose trajectories.

Two trajectory generators mirror the paper's two dataset styles:

* :func:`orbit_cameras` — 360-degree orbits around an object/scene, as in the
  NeRF synthetic dataset and the paper's rotating-viewpoint FPS evaluation
  (7.5 s per revolution);
* :func:`forward_facing_cameras` — LLFF-style forward-facing poses for the
  "real-world" scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Camera:
    """A pinhole camera with position/orientation and image resolution."""

    position: np.ndarray
    look_at: np.ndarray
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    fov_deg: float = 50.0
    width: int = 128
    height: int = 128

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        self.look_at = np.asarray(self.look_at, dtype=np.float64)
        self.up = np.asarray(self.up, dtype=np.float64)
        if self.width <= 0 or self.height <= 0:
            raise ValueError("camera resolution must be positive")
        if not 0.0 < self.fov_deg < 180.0:
            raise ValueError("field of view must be in (0, 180) degrees")

    @property
    def forward(self) -> np.ndarray:
        direction = self.look_at - self.position
        norm = np.linalg.norm(direction)
        if norm == 0:
            raise ValueError("camera position and look_at coincide")
        return direction / norm

    @property
    def rotation(self) -> np.ndarray:
        """Camera-to-world rotation with columns (right, true_up, forward)."""
        forward = self.forward
        right = np.cross(forward, self.up)
        norm = np.linalg.norm(right)
        if norm < 1e-9:
            raise ValueError("camera up vector is parallel to the view direction")
        right = right / norm
        true_up = np.cross(right, forward)
        return np.stack([right, true_up, forward], axis=1)

    def resized(self, width: int, height: int) -> "Camera":
        """A copy of this camera with a different image resolution."""
        return Camera(
            position=self.position.copy(),
            look_at=self.look_at.copy(),
            up=self.up.copy(),
            fov_deg=self.fov_deg,
            width=int(width),
            height=int(height),
        )

    def zoomed_at(self, target: np.ndarray, distance_scale: float) -> "Camera":
        """A copy looking at ``target`` with the viewing distance rescaled.

        Used by the segmentation module when building per-object training
        views (crop + enlarge is emulated in 3D by moving the camera closer
        to the object so it fills the frame).
        """
        target = np.asarray(target, dtype=np.float64)
        offset = self.position - self.look_at
        return Camera(
            position=target + offset * float(distance_scale),
            look_at=target,
            up=self.up.copy(),
            fov_deg=self.fov_deg,
            width=self.width,
            height=self.height,
        )


def camera_rays(camera: Camera) -> tuple:
    """Generate one ray per pixel.

    Returns:
        ``(origins, directions)`` arrays of shape ``(H*W, 3)``; directions
        are unit length, ordered row-major (matching ``image.reshape(-1, 3)``).
    """
    height, width = camera.height, camera.width
    focal = 0.5 * width / np.tan(0.5 * np.deg2rad(camera.fov_deg))
    xs = (np.arange(width) + 0.5) - 0.5 * width
    ys = 0.5 * height - (np.arange(height) + 0.5)
    grid_x, grid_y = np.meshgrid(xs, ys)
    directions_cam = np.stack(
        [grid_x / focal, grid_y / focal, np.ones_like(grid_x)], axis=-1
    ).reshape(-1, 3)
    directions = directions_cam @ camera.rotation.T
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    origins = np.broadcast_to(camera.position, directions.shape).copy()
    return origins, directions


def orbit_cameras(
    center: np.ndarray,
    radius: float,
    count: int,
    elevation_deg: float = 25.0,
    width: int = 128,
    height: int = 128,
    fov_deg: float = 50.0,
    full_circle: bool = True,
) -> list:
    """Cameras orbiting ``center`` on a circle at the given elevation."""
    if count <= 0:
        raise ValueError("count must be positive")
    center = np.asarray(center, dtype=np.float64)
    elevation = np.deg2rad(elevation_deg)
    angles = np.linspace(0.0, 2.0 * np.pi, count, endpoint=not full_circle)
    cameras = []
    for angle in angles:
        position = center + radius * np.array(
            [
                np.cos(angle) * np.cos(elevation),
                np.sin(elevation),
                np.sin(angle) * np.cos(elevation),
            ]
        )
        cameras.append(
            Camera(
                position=position,
                look_at=center,
                fov_deg=fov_deg,
                width=width,
                height=height,
            )
        )
    return cameras


def forward_facing_cameras(
    center: np.ndarray,
    distance: float,
    count: int,
    spread: float = 0.6,
    width: int = 128,
    height: int = 128,
    fov_deg: float = 55.0,
) -> list:
    """LLFF-style forward-facing cameras.

    Cameras are distributed on a small planar patch at ``distance`` in front
    of the scene ``center`` (along +Z), all looking at the centre — the
    capture pattern of handheld real-world forward-facing datasets.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    # Deterministic low-discrepancy pattern over the capture plane.
    golden = (1.0 + np.sqrt(5.0)) / 2.0
    for index in range(count):
        u = (index / golden) % 1.0 - 0.5
        v = (index + 0.5) / count - 0.5
        offset = np.array([u * 2.0 * spread, v * spread, 0.0])
        position = center + np.array([0.0, 0.15, distance]) + offset
        cameras.append(
            Camera(
                position=position,
                look_at=center,
                fov_deg=fov_deg,
                width=width,
                height=height,
            )
        )
    return cameras
