"""Signed-distance-function (SDF) primitives and combinators.

All functions are vectorised: they take an ``(N, 3)`` array of points and
return an ``(N,)`` array of signed distances (negative inside the surface).
The reference objects in :mod:`repro.scenes.objects` are assembled from
these primitives, and the ground-truth ray tracer, the voxel baker and the
radiance field all query the same SDFs, so every representation in the
library is derived from a single authoritative geometry definition.
"""

from __future__ import annotations

import numpy as np


def _as_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got shape {points.shape}")
    return points


def sdf_sphere(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Signed distance to a sphere."""
    points = _as_points(points)
    center = np.asarray(center, dtype=np.float64)
    return np.linalg.norm(points - center, axis=1) - float(radius)


def sdf_box(points: np.ndarray, center: np.ndarray, half_extents: np.ndarray) -> np.ndarray:
    """Signed distance to an axis-aligned box."""
    points = _as_points(points)
    center = np.asarray(center, dtype=np.float64)
    half = np.asarray(half_extents, dtype=np.float64)
    q = np.abs(points - center) - half
    outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
    inside = np.minimum(np.max(q, axis=1), 0.0)
    return outside + inside


def sdf_rounded_box(
    points: np.ndarray, center: np.ndarray, half_extents: np.ndarray, radius: float
) -> np.ndarray:
    """Signed distance to a box with rounded edges of the given radius."""
    shrunk = np.asarray(half_extents, dtype=np.float64) - float(radius)
    if np.any(shrunk <= 0):
        raise ValueError("rounding radius must be smaller than every half extent")
    return sdf_box(points, center, shrunk) - float(radius)


def sdf_torus(
    points: np.ndarray, center: np.ndarray, major_radius: float, minor_radius: float
) -> np.ndarray:
    """Signed distance to a torus lying in the XZ plane (axis along Y)."""
    points = _as_points(points) - np.asarray(center, dtype=np.float64)
    ring = np.sqrt(points[:, 0] ** 2 + points[:, 2] ** 2) - float(major_radius)
    return np.sqrt(ring**2 + points[:, 1] ** 2) - float(minor_radius)


def sdf_cylinder(
    points: np.ndarray, center: np.ndarray, radius: float, half_height: float
) -> np.ndarray:
    """Signed distance to a capped cylinder with its axis along Y."""
    points = _as_points(points) - np.asarray(center, dtype=np.float64)
    radial = np.sqrt(points[:, 0] ** 2 + points[:, 2] ** 2) - float(radius)
    axial = np.abs(points[:, 1]) - float(half_height)
    q = np.stack([radial, axial], axis=1)
    outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
    inside = np.minimum(np.max(q, axis=1), 0.0)
    return outside + inside


def sdf_capsule(
    points: np.ndarray, endpoint_a: np.ndarray, endpoint_b: np.ndarray, radius: float
) -> np.ndarray:
    """Signed distance to a capsule (a segment with thickness ``radius``)."""
    points = _as_points(points)
    a = np.asarray(endpoint_a, dtype=np.float64)
    b = np.asarray(endpoint_b, dtype=np.float64)
    pa = points - a
    ba = b - a
    denom = float(ba @ ba)
    if denom == 0.0:
        return np.linalg.norm(pa, axis=1) - float(radius)
    h = np.clip((pa @ ba) / denom, 0.0, 1.0)
    return np.linalg.norm(pa - h[:, None] * ba, axis=1) - float(radius)


def sdf_union(*distances: np.ndarray) -> np.ndarray:
    """Union of shapes (pointwise minimum of distances)."""
    if not distances:
        raise ValueError("sdf_union needs at least one distance field")
    result = distances[0]
    for dist in distances[1:]:
        result = np.minimum(result, dist)
    return result


def sdf_intersection(*distances: np.ndarray) -> np.ndarray:
    """Intersection of shapes (pointwise maximum of distances)."""
    if not distances:
        raise ValueError("sdf_intersection needs at least one distance field")
    result = distances[0]
    for dist in distances[1:]:
        result = np.maximum(result, dist)
    return result


def sdf_subtraction(base: np.ndarray, cut: np.ndarray) -> np.ndarray:
    """Subtract the ``cut`` shape from the ``base`` shape."""
    return np.maximum(base, -cut)


def repeat_xz(points: np.ndarray, period: float) -> np.ndarray:
    """Tile space periodically in X and Z (domain repetition).

    Returns a copy of ``points`` whose X/Z coordinates are wrapped into a
    cell of side ``period`` centred at the origin.  Evaluating a primitive
    on the repeated points yields an infinite grid of copies, which is how
    the high-complexity reference objects (e.g. the lego analogue's studs)
    obtain many geometric features at constant evaluation cost.
    """
    points = _as_points(points).copy()
    period = float(period)
    if period <= 0:
        raise ValueError("period must be positive")
    for axis in (0, 2):
        points[:, axis] = (
            np.mod(points[:, axis] + 0.5 * period, period) - 0.5 * period
        )
    return points
