"""NeRFlex reproduction package.

This package reproduces *NeRFlex: Resource-aware Real-time High-quality
Rendering of Complex Scenes on Mobile Devices* (Wang & Zhu, ICDCS 2025) as a
pure-Python / numpy library.  It contains

* the paper's primary contribution — detail-based scene segmentation, a
  lightweight white-box configuration profiler and a dynamic-programming
  configuration selector (:mod:`repro.core`);
* every substrate the paper depends on, rebuilt from scratch: a radiance
  field and volume renderer (:mod:`repro.nerf`), a mesh/texture baking
  pipeline (:mod:`repro.baking`), synthetic and "real-world style" scenes
  (:mod:`repro.scenes`), object detection (:mod:`repro.detection`),
  image-quality metrics (:mod:`repro.metrics`), a mobile-device simulator
  (:mod:`repro.device`) and the baselines the paper compares against
  (:mod:`repro.baselines`).

See ``DESIGN.md`` for the module inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured results of every table and figure.

The most commonly used classes are re-exported lazily at the package top
level (``repro.NeRFlexPipeline``, ``repro.IPHONE_13``, ...), so importing
``repro`` stays cheap for callers that only need one substrate.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

#: Top-level name -> (module, attribute) table for lazy re-exports.
_LAZY_EXPORTS = {
    "NeRFlexPipeline": ("repro.core.pipeline", "NeRFlexPipeline"),
    "PipelineConfig": ("repro.core.pipeline", "PipelineConfig"),
    "DeploymentReport": ("repro.core.pipeline", "DeploymentReport"),
    "ObjectProfile": ("repro.core.profiler", "ObjectProfile"),
    "ProfileFitter": ("repro.core.profiler", "ProfileFitter"),
    "NeRFlexDPSelector": ("repro.core.selector", "NeRFlexDPSelector"),
    "ExactMCKSelector": ("repro.core.selector", "ExactMCKSelector"),
    "SelectionResult": ("repro.core.selector", "SelectionResult"),
    "DetailBasedSegmenter": ("repro.core.segmentation", "DetailBasedSegmenter"),
    "SubScene": ("repro.core.segmentation", "SubScene"),
    "Configuration": ("repro.core.config_space", "Configuration"),
    "ConfigurationSpace": ("repro.core.config_space", "ConfigurationSpace"),
    "DeviceProfile": ("repro.device.models", "DeviceProfile"),
    "IPHONE_13": ("repro.device.models", "IPHONE_13"),
    "PIXEL_4": ("repro.device.models", "PIXEL_4"),
    "RenderEngine": ("repro.render.engine", "RenderEngine"),
    "RenderCache": ("repro.render.cache", "RenderCache"),
    "ArtifactStore": ("repro.exec.artifacts", "ArtifactStore"),
    "Backend": ("repro.exec.backends", "Backend"),
    "SerialBackend": ("repro.exec.backends", "SerialBackend"),
    "ThreadBackend": ("repro.exec.backends", "ThreadBackend"),
    "ProcessBackend": ("repro.exec.backends", "ProcessBackend"),
    "resolve_backend": ("repro.exec.backends", "resolve_backend"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    """Resolve lazy top-level exports (PEP 562)."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
