"""Baselines the paper compares NeRFlex against.

* :class:`SingleNeRFBaseline` — the whole scene represented by one
  mesh-baked NeRF (MobileNeRF at its recommended configuration);
* :class:`BlockNeRFBaseline` — one mesh-baked NeRF per object, all at the
  recommended configuration, with no resource awareness (Block-NeRF style);
* :class:`NGPEmulator` / :class:`MipNeRF360Emulator` — full-scale
  volume-rendered NeRF variants (quality references in Table I / Fig. 4);
  they are not deployable to the mobile renderer and therefore report
  quality only.
"""

from repro.baselines.single_nerf import SingleNeRFBaseline, RECOMMENDED_SINGLE_CONFIG
from repro.baselines.block_nerf import BlockNeRFBaseline
from repro.baselines.field_baselines import (
    FieldBaselineReport,
    MipNeRF360Emulator,
    NGPEmulator,
)

__all__ = [
    "SingleNeRFBaseline",
    "RECOMMENDED_SINGLE_CONFIG",
    "BlockNeRFBaseline",
    "FieldBaselineReport",
    "NGPEmulator",
    "MipNeRF360Emulator",
]
