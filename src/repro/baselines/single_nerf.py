"""Single-NeRF baseline: the whole scene in one mesh-baked NeRF.

This is the paper's "Single" baseline (MobileNeRF at its recommended
configuration): one network is trained on the original training images of
the entire scene and baked as a single mesh + texture bundle.  Because every
training image must contain the whole scene, each object covers only a small
fraction of the pixels, which is exactly the training-coverage degradation
the NeRFlex decomposition avoids.
"""

from __future__ import annotations

import numpy as np

from repro.baking.baked_model import BakedMultiModel, DEFAULT_SIZE_CONSTANTS, bake_field
from repro.core.config_space import Configuration
from repro.core.pipeline import DeploymentReport, evaluate_baked_deployment
from repro.device.models import DeviceProfile
from repro.nerf.degradation import DegradedField, coverage_detail_scale

#: The MobileNeRF-recommended configuration, expressed in this library's
#: configuration space (the paper's ``(g, p) = (128, 17)``; the patch size is
#: scaled with the renderer resolution as discussed in EXPERIMENTS.md).
RECOMMENDED_SINGLE_CONFIG = Configuration(granularity=128, patch_size=6)


class SingleNeRFBaseline:
    """Bake and evaluate the single-NeRF (MobileNeRF) representation.

    Args:
        config: baked configuration (defaults to the recommended one).
        network_factor: training-capability multiplier of the degradation
            model (1.0 = MobileNeRF-class network).
        apply_degradation: disable to bake directly from the ground-truth
            field (an idealised upper bound).
        size_constants: byte-cost constants (shared with NeRFlex).
    """

    method_name = "Single-NeRF (MobileNeRF)"

    def __init__(
        self,
        config: Configuration = RECOMMENDED_SINGLE_CONFIG,
        network_factor: float = 1.0,
        apply_degradation: bool = True,
        size_constants=DEFAULT_SIZE_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.network_factor = float(network_factor)
        self.apply_degradation = bool(apply_degradation)
        self.size_constants = size_constants
        self.seed = int(seed)

    def build_field(self, dataset):
        """The field a whole-scene NeRF would learn from the training views."""
        scene = dataset.scene
        if not self.apply_degradation:
            return scene
        counts = [int(view.hit_mask.sum()) for view in dataset.train_views]
        detail_scale = coverage_detail_scale(
            counts, scene.extent, network_factor=self.network_factor
        )
        return DegradedField(scene, detail_scale, seed=self.seed)

    def bake(self, dataset) -> BakedMultiModel:
        """Bake the whole scene at the recommended configuration."""
        field = self.build_field(dataset)
        model = bake_field(
            field,
            granularity=self.config.granularity,
            patch_size=self.config.patch_size,
            name="scene",
            size_constants=self.size_constants,
        )
        return BakedMultiModel([model])

    def run(
        self,
        dataset,
        device: DeviceProfile,
        num_eval_views: int = 2,
        num_fps_frames: int = 2000,
        gt_cache: "dict | None" = None,
        engine=None,
    ) -> DeploymentReport:
        """Bake, deploy and score the single-NeRF representation."""
        multi_model = self.bake(dataset)
        return evaluate_baked_deployment(
            multi_model,
            dataset,
            device,
            method=self.method_name,
            num_eval_views=num_eval_views,
            num_fps_frames=num_fps_frames,
            seed=self.seed,
            gt_cache=gt_cache,
            engine=engine,
        )
