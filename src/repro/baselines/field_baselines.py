"""Full-scale NeRF quality references: Instant-NGP and Mip-NeRF 360 emulators.

The paper compares against the initial full-scale models used by mobile
distillation pipelines — Instant-NGP and Mip-NeRF 360 (Table I, Fig. 4).
Both are whole-scene networks trained on the original images and rendered by
volume rendering on a workstation; neither is deployable to the mobile
renderer, so they serve purely as quality references.

The emulators build the whole-scene field with the same training-coverage
degradation model as every other method; what distinguishes them is the
``network_factor`` — their stronger representations recover finer detail
from the same views than a MobileNeRF-class network — and the fact that
they render the field directly (no mesh discretisation).  Rendering uses
sphere tracing by default; pass ``renderer="volume"`` to use the volume
renderer instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics import lpips_proxy, psnr, ssim
from repro.nerf.degradation import DegradedField, coverage_detail_scale
from repro.render.engine import default_engine


@dataclass
class FieldBaselineReport:
    """Quality report of a non-deployable (workstation-only) baseline."""

    method: str
    ssim: float
    psnr: float
    lpips: float
    per_object_ssim: dict = field(default_factory=dict)

    def describe(self) -> dict:
        return {
            "method": self.method,
            "ssim": round(self.ssim, 4),
            "psnr": round(self.psnr, 2),
            "lpips": round(self.lpips, 4),
        }


class _FieldEmulator:
    """Shared machinery of the volume-rendered whole-scene baselines."""

    method_name = "field"
    network_factor = 1.0

    def __init__(
        self,
        apply_degradation: bool = True,
        num_samples: int = 128,
        renderer: str = "sphere",
        seed: int = 0,
    ) -> None:
        if renderer not in {"sphere", "volume"}:
            raise ValueError("renderer must be 'sphere' or 'volume'")
        self.apply_degradation = bool(apply_degradation)
        self.num_samples = int(num_samples)
        self.renderer = renderer
        self.seed = int(seed)

    def build_field(self, dataset):
        scene = dataset.scene
        if not self.apply_degradation:
            return scene
        counts = [int(view.hit_mask.sum()) for view in dataset.train_views]
        detail_scale = coverage_detail_scale(
            counts, scene.extent, network_factor=self.network_factor
        )
        return DegradedField(scene, detail_scale, seed=self.seed)

    def render_key(self, dataset) -> tuple:
        """Render-cache scene key of this emulator's field on a dataset.

        ``build_field`` is deterministic given the dataset and the
        emulator's parameters, so any caller re-building the field (e.g. the
        benchmark harness's detail-region scorer) shares renders with
        :meth:`run` through the engine cache.
        """
        return (
            getattr(dataset, "name", ""),
            "field",
            self.method_name,
            self.apply_degradation,
            self.seed,
        )

    def run(self, dataset, num_eval_views: int = 2, engine=None) -> FieldBaselineReport:
        """Volume-render the field on the test views and score quality.

        Rendering goes through ``engine`` (the shared default engine when
        omitted), so the evaluation inherits that engine's execution
        backend and render cache.
        """
        field_model = self.build_field(dataset)
        views = dataset.test_views[: max(num_eval_views, 1)]
        cameras = dataset.test_cameras[: max(num_eval_views, 1)]
        engine = engine or default_engine()
        if self.renderer == "volume":
            rendered_views = engine.volume_render_views(
                field_model,
                cameras,
                num_samples=self.num_samples,
                background=dataset.scene.background_color,
                scene_key=self.render_key(dataset),
            )
        else:
            rendered_views = engine.render_field_views(
                field_model,
                cameras,
                background=dataset.scene.background_color,
                scene_key=self.render_key(dataset),
            )
        ssim_scores, psnr_scores, lpips_scores = [], [], []
        per_object: dict = {}
        for view, camera, rendered in zip(views, cameras, rendered_views):
            ssim_scores.append(ssim(view.rgb, rendered.rgb))
            psnr_scores.append(psnr(view.rgb, rendered.rgb))
            lpips_scores.append(lpips_proxy(view.rgb, rendered.rgb))
            for placed in dataset.scene.placed:
                mask = view.object_mask(placed.instance_id)
                if mask.sum() < 16:
                    continue
                per_object.setdefault(placed.instance_name, []).append(
                    ssim(view.rgb, rendered.rgb, mask=mask)
                )
        return FieldBaselineReport(
            method=self.method_name,
            ssim=float(np.mean(ssim_scores)),
            psnr=float(np.mean(psnr_scores)),
            lpips=float(np.mean(lpips_scores)),
            per_object_ssim={k: float(np.mean(v)) for k, v in per_object.items()},
        )


class MipNeRF360Emulator(_FieldEmulator):
    """Mip-NeRF 360: an unbounded-scene NeRF, stronger than MobileNeRF."""

    method_name = "Mip-NeRF 360"
    network_factor = 0.7


class NGPEmulator(_FieldEmulator):
    """Instant-NGP: hash-grid NeRF, the strongest whole-scene reference."""

    method_name = "Instant-NGP"
    network_factor = 0.45
