"""Block-NeRF baseline: one full-configuration NeRF per object.

The paper's multi-NeRF reference point: every object in the scene is
represented independently by its own mesh-baked NeRF at the recommended
configuration, with no awareness of the device's memory budget.  Quality is
the highest of all methods, but the summed data size far exceeds what mobile
devices can load (Figs. 4-6).
"""

from __future__ import annotations

from repro.baking.baked_model import (
    BakedMultiModel,
    DEFAULT_SIZE_CONSTANTS,
    bake_field,
    bake_geometry,
    field_cache_identity,
)
from repro.baselines.single_nerf import RECOMMENDED_SINGLE_CONFIG
from repro.core.config_space import Configuration
from repro.core.pipeline import DeploymentReport, evaluate_baked_deployment
from repro.core.segmentation import DetailBasedSegmenter
from repro.device.models import DeviceProfile
from repro.exec.backends import resolve_backend
from repro.nerf.degradation import DegradedField, coverage_detail_scale

import numpy as np


class BlockNeRFBaseline:
    """Bake and evaluate the Block-NeRF style per-object representation.

    Each object gets its own dedicated NeRF trained on views of that object
    (the same dedicated training treatment NeRFlex's segmentation provides),
    baked at the fixed recommended configuration regardless of any device
    constraint.
    """

    method_name = "Block-NeRF"

    def __init__(
        self,
        config: Configuration = RECOMMENDED_SINGLE_CONFIG,
        apply_degradation: bool = True,
        size_constants=DEFAULT_SIZE_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.apply_degradation = bool(apply_degradation)
        self.size_constants = size_constants
        self.seed = int(seed)

    def bake(
        self, dataset, geometry_cache: "dict | None" = None, backend=None
    ) -> BakedMultiModel:
        """Bake one sub-model per object at the fixed configuration.

        ``geometry_cache`` (optional) shares voxelised geometry with a
        NeRFlex pipeline's measurement cache: Block-NeRF's per-object fields
        are built exactly like the pipeline's (same segmentation, same
        degradation seed), so a granularity already voxelised during
        profiling is reused instead of re-sampled.  ``backend`` (an
        execution backend, a name, or ``None`` for ``REPRO_BACKEND``) fans
        the remaining per-object voxelisations out in parallel; geometry is
        plain array data, so the fan-out works on every backend.
        """
        backend = resolve_backend(backend)
        segmenter = DetailBasedSegmenter()
        segmentation = segmenter.segment(dataset)
        fields = []
        geometries = []
        pending = []
        for sub_scene in segmentation.sub_scenes:
            truth = dataset.scene.subset(sub_scene.instance_ids)
            if self.apply_degradation:
                extent = float(np.max(truth.bounds_max - truth.bounds_min))
                detail_scale = coverage_detail_scale(
                    sub_scene.training_pixel_counts, extent
                )
                field = DegradedField(truth, detail_scale, seed=self.seed)
            else:
                field = truth
            geometry_key = (
                "geometry",
                getattr(dataset, "name", ""),
                sub_scene.name,
                field_cache_identity(field),
                self.seed,
                self.apply_degradation,
                self.config.granularity,
            )
            geometry = (
                geometry_cache.get(geometry_key) if geometry_cache is not None else None
            )
            fields.append(field)
            geometries.append(geometry)
            if geometry is None:
                pending.append((len(fields) - 1, geometry_key, field))
        if pending:
            computed = backend.map(
                lambda task: bake_geometry(task[2], self.config.granularity), pending
            )
            for (index, geometry_key, _), geometry in zip(pending, computed):
                geometries[index] = geometry
                if geometry_cache is not None:
                    geometry_cache[geometry_key] = geometry
        submodels = []
        for sub_scene, field, geometry in zip(
            segmentation.sub_scenes, fields, geometries
        ):
            submodels.append(
                bake_field(
                    field,
                    granularity=self.config.granularity,
                    patch_size=self.config.patch_size,
                    name=sub_scene.name,
                    size_constants=self.size_constants,
                    geometry=geometry,
                )
            )
        return BakedMultiModel(submodels)

    def run(
        self,
        dataset,
        device: DeviceProfile,
        num_eval_views: int = 2,
        num_fps_frames: int = 2000,
        gt_cache: "dict | None" = None,
        engine=None,
        backend=None,
    ) -> DeploymentReport:
        """Bake, deploy and score the Block-NeRF representation."""
        multi_model = self.bake(dataset, geometry_cache=gt_cache, backend=backend)
        return evaluate_baked_deployment(
            multi_model,
            dataset,
            device,
            method=self.method_name,
            num_eval_views=num_eval_views,
            num_fps_frames=num_fps_frames,
            seed=self.seed,
            gt_cache=gt_cache,
            engine=engine,
        )
