"""Structural Similarity Index Measure (SSIM).

SSIM is the quality metric ``Q`` that NeRFlex's profiler predicts and its
configuration selector maximises.  The implementation follows Wang et al.
(2004): local means, variances and covariance computed with a Gaussian
window, combined into luminance, contrast and structure terms.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.utils.image import to_gray


def _local_stats(image: np.ndarray, sigma: float) -> tuple[np.ndarray, np.ndarray]:
    mean = gaussian_filter(image, sigma=sigma, mode="reflect")
    mean_sq = gaussian_filter(image * image, sigma=sigma, mode="reflect")
    var = np.maximum(mean_sq - mean * mean, 0.0)
    return mean, var


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    data_range: float = 1.0,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
    mask: np.ndarray | None = None,
    return_map: bool = False,
) -> "float | tuple[float, np.ndarray]":
    """Compute the mean SSIM between two images.

    Args:
        image_a, image_b: images of identical shape, ``(H, W)`` or
            ``(H, W, 3)``; RGB images are converted to luma first.
        data_range: dynamic range of pixel values (1.0 for images in [0, 1]).
        sigma: Gaussian window standard deviation.
        k1, k2: the standard SSIM stabilisation constants.
        mask: optional boolean mask; when given, the mean is taken only over
            the masked pixels (used for the "high-frequency detail region"
            scores reported in Fig. 4).
        return_map: if true, also return the per-pixel SSIM map.

    Returns:
        The scalar mean SSIM in ``[-1, 1]`` (1 means identical images), and
        optionally the SSIM map.
    """
    image_a = to_gray(np.asarray(image_a, dtype=np.float64))
    image_b = to_gray(np.asarray(image_b, dtype=np.float64))
    if image_a.shape != image_b.shape:
        raise ValueError(
            f"ssim: image shapes differ: {image_a.shape} vs {image_b.shape}"
        )

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mean_a, var_a = _local_stats(image_a, sigma)
    mean_b, var_b = _local_stats(image_b, sigma)
    mean_ab = gaussian_filter(image_a * image_b, sigma=sigma, mode="reflect")
    covar = mean_ab - mean_a * mean_b

    numerator = (2.0 * mean_a * mean_b + c1) * (2.0 * covar + c2)
    denominator = (mean_a**2 + mean_b**2 + c1) * (var_a + var_b + c2)
    ssim_map = numerator / denominator

    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != ssim_map.shape:
            raise ValueError(
                f"ssim: mask shape {mask.shape} does not match image {ssim_map.shape}"
            )
        if not mask.any():
            raise ValueError("ssim: mask selects no pixels")
        value = float(ssim_map[mask].mean())
    else:
        value = float(ssim_map.mean())

    if return_map:
        return value, ssim_map
    return value
