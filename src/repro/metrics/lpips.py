"""A fixed-filter perceptual distance standing in for LPIPS.

The paper evaluates LPIPS with a pretrained deep network.  Pretrained
weights are not available offline, so this module implements a deterministic
perceptual distance with the same qualitative behaviour: it compares
multi-scale, multi-orientation local structure (Gabor-like responses and
gradients) rather than raw pixels, so blur, missing detail and structural
artefacts are penalised more than small uniform colour shifts.  Lower is
better, and 0 means identical images — matching LPIPS conventions so the
Table I orderings carry over.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve, gaussian_filter

from repro.utils.image import to_gray


def _gabor_kernel(size: int, theta: float, wavelength: float, sigma: float) -> np.ndarray:
    """Build a real Gabor kernel with zero DC response."""
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    x_theta = xs * np.cos(theta) + ys * np.sin(theta)
    y_theta = -xs * np.sin(theta) + ys * np.cos(theta)
    envelope = np.exp(-(x_theta**2 + y_theta**2) / (2.0 * sigma**2))
    carrier = np.cos(2.0 * np.pi * x_theta / wavelength)
    kernel = envelope * carrier
    kernel -= kernel.mean()
    norm = np.sqrt(np.sum(kernel**2))
    if norm > 0:
        kernel /= norm
    return kernel


_ORIENTATIONS = (0.0, np.pi / 4.0, np.pi / 2.0, 3.0 * np.pi / 4.0)
_FILTER_BANK = [
    _gabor_kernel(size=7, theta=theta, wavelength=wavelength, sigma=2.0)
    for theta in _ORIENTATIONS
    for wavelength in (3.0, 6.0)
]


def _feature_stack(image: np.ndarray) -> np.ndarray:
    """Stack of normalised filter responses for one grayscale image."""
    responses = [convolve(image, kernel, mode="reflect") for kernel in _FILTER_BANK]
    grad_y, grad_x = np.gradient(image)
    responses.append(grad_x)
    responses.append(grad_y)
    return np.stack(responses, axis=0)


def lpips_proxy(image_a: np.ndarray, image_b: np.ndarray, num_scales: int = 3) -> float:
    """Perceptual distance between two images (lower is better, 0 = identical).

    The distance averages normalised filter-response differences over
    ``num_scales`` dyadic scales, mimicking the multi-layer feature-space
    comparison that LPIPS performs with a pretrained CNN.
    """
    gray_a = to_gray(np.asarray(image_a, dtype=np.float64))
    gray_b = to_gray(np.asarray(image_b, dtype=np.float64))
    if gray_a.shape != gray_b.shape:
        raise ValueError(
            f"lpips_proxy: image shapes differ: {gray_a.shape} vs {gray_b.shape}"
        )

    total = 0.0
    scales = 0
    for scale in range(num_scales):
        if min(gray_a.shape) < 8:
            break
        feats_a = _feature_stack(gray_a)
        feats_b = _feature_stack(gray_b)
        # Channel-wise normalisation, as LPIPS normalises feature activations.
        norm_a = np.sqrt(np.sum(feats_a**2, axis=0, keepdims=True)) + 1e-6
        norm_b = np.sqrt(np.sum(feats_b**2, axis=0, keepdims=True)) + 1e-6
        diff = feats_a / norm_a - feats_b / norm_b
        total += float(np.mean(diff**2))
        scales += 1
        # Downsample by two (blur + stride) for the next scale.
        gray_a = gaussian_filter(gray_a, sigma=1.0, mode="reflect")[::2, ::2]
        gray_b = gaussian_filter(gray_b, sigma=1.0, mode="reflect")[::2, ::2]

    if scales == 0:
        raise ValueError("lpips_proxy: images too small for any scale")
    return total / scales
