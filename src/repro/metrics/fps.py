"""Frames-per-second traces and summary statistics (rendering smoothness)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FPSTrace:
    """An instantaneous-FPS trace over a rendering session.

    Attributes:
        fps: per-frame instantaneous FPS values (0.0 for frames that could
            not be rendered, e.g. when loading fails).
        failed: true when rendering could not start at all — the paper's
            "Single NeRF fails to render on iPhone" case (Fig. 6a).
    """

    fps: np.ndarray = field(default_factory=lambda: np.zeros(0))
    failed: bool = False

    def __post_init__(self) -> None:
        self.fps = np.asarray(self.fps, dtype=np.float64)

    @property
    def num_frames(self) -> int:
        return int(self.fps.size)

    @property
    def average(self) -> float:
        """Mean FPS over the whole trace (0.0 for a failed / empty trace)."""
        if self.failed or self.fps.size == 0:
            return 0.0
        return float(self.fps.mean())

    def steady_state_average(self, warmup_fraction: float = 0.1) -> float:
        """Mean FPS after discarding the initial loading/warm-up phase."""
        if self.failed or self.fps.size == 0:
            return 0.0
        start = int(self.fps.size * warmup_fraction)
        return float(self.fps[start:].mean())

    def stutter_rate(self, threshold_fraction: float = 0.5) -> float:
        """Fraction of frames whose FPS falls below ``threshold_fraction`` of
        the steady-state average — a simple smoothness/stutter indicator."""
        if self.failed or self.fps.size == 0:
            return 1.0
        steady = self.steady_state_average()
        if steady <= 0.0:
            return 1.0
        return float(np.mean(self.fps < threshold_fraction * steady))


def summarize_fps(trace: FPSTrace) -> dict:
    """Return a dictionary summary of an FPS trace (used by the benches)."""
    return {
        "num_frames": trace.num_frames,
        "failed": trace.failed,
        "average_fps": trace.average,
        "steady_state_fps": trace.steady_state_average(),
        "stutter_rate": trace.stutter_rate(),
    }
