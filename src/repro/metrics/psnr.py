"""Peak Signal-to-Noise Ratio and mean squared error."""

from __future__ import annotations

import numpy as np


def mse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    image_a = np.asarray(image_a, dtype=np.float64)
    image_b = np.asarray(image_b, dtype=np.float64)
    if image_a.shape != image_b.shape:
        raise ValueError(
            f"mse: image shapes differ: {image_a.shape} vs {image_b.shape}"
        )
    return float(np.mean((image_a - image_b) ** 2))


def psnr(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak Signal-to-Noise Ratio in decibels.

    Identical images return ``inf``.  Higher is better; the paper reports
    PSNR alongside SSIM and LPIPS in Table I.
    """
    error = mse(image_a, image_b)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10((data_range**2) / error))
