"""Image-quality and smoothness metrics used throughout the evaluation.

The paper reports SSIM (its primary quality metric ``Q``), PSNR, LPIPS and
frames-per-second.  LPIPS in the paper uses a pretrained network; this
reproduction substitutes a fixed multi-scale perceptual distance with the
same ordering behaviour (see ``DESIGN.md``).
"""

from repro.metrics.ssim import ssim
from repro.metrics.psnr import psnr, mse
from repro.metrics.lpips import lpips_proxy
from repro.metrics.fps import FPSTrace, summarize_fps

__all__ = ["ssim", "psnr", "mse", "lpips_proxy", "FPSTrace", "summarize_fps"]
