"""The typed environment-variable registry.

Every environment variable the library, the test tier and the benchmark
harness consult is declared here exactly once, as an :class:`EnvVar` with
its default, its parser and the modules that consume it.  This is the
*only* module allowed to touch ``os.environ`` for reads: the static
analyzer (:mod:`repro.analysis`, rule ``REP-E401``) flags raw
``os.environ`` reads anywhere else, so a variable can never again grow a
second, slightly different default in a far-away call site.

Reading a knob::

    from repro.config import env

    if env.REPRO_BENCH_QUICK.get():
        ...

Semantics shared by every variable:

* unset **or empty** → the declared default (an empty string has always
  meant "not configured" throughout this code base);
* a value the parser rejects (:class:`ValueError`) → the declared default,
  never an exception — a typo in ``REPRO_ARTIFACT_MAX_MB`` must not take
  down a run that was told to cache artefacts opportunistically;
* parsing happens on every :meth:`EnvVar.get`, so tests may monkeypatch
  ``os.environ`` freely.

The registry also renders itself as the environment-variable reference
table in DESIGN.md (:func:`env_table_markdown`, emitted by
``python -m repro.analysis --env-table`` and staleness-checked in
``tests/test_config_env.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Parsers
# ---------------------------------------------------------------------------

#: Spellings that have always meant "off" for the suite's boolean knobs
#: (``REPRO_FULL`` etc.); anything else — ``1``, ``yes``, ``TRUE`` — is on.
_FALSE_SPELLINGS = ("0", "", "false", "False")


def parse_bool(raw: str) -> bool:
    """``"0"`` / ``""`` / ``"false"`` / ``"False"`` → ``False``, else ``True``."""
    return raw not in _FALSE_SPELLINGS


def parse_str(raw: str) -> str:
    """The raw value, unchanged."""
    return raw


def parse_optional_str(raw: str) -> "str | None":
    """The stripped value, or ``None`` when only whitespace remains."""
    return raw.strip() or None


def parse_mb_bytes(raw: str) -> int:
    """A size in (possibly fractional) MiB → bytes, floored at 1 MiB."""
    return max(int(float(raw) * (1 << 20)), 1 << 20)


def parse_non_negative_int(raw: str) -> int:
    """An integer count, floored at 0."""
    return max(int(raw), 0)


# ---------------------------------------------------------------------------
# The variable type and registry
# ---------------------------------------------------------------------------

#: Registration order is presentation order in the reference table.
REGISTRY: "dict[str, EnvVar]" = {}


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable: name, default, parser, consumers.

    Args:
        name: the environment variable name (``REPRO_*`` for the library's
            own knobs).
        default: the already-parsed value used when the variable is unset,
            empty, or unparseable.
        parser: ``str -> value``; called only on non-empty raw values.
        description: one line for the reference table.
        consumers: dotted module paths that call :meth:`get` — kept
            accurate by ``tests/test_config_env.py``.
        default_text: optional human rendering of ``default`` for the
            table (e.g. ``"4 GiB"`` instead of ``4294967296``).
    """

    name: str
    default: object
    parser: "callable"
    description: str
    consumers: "tuple[str, ...]" = ()
    default_text: "str | None" = None

    def raw(self) -> "str | None":
        """The unparsed environment value, or ``None`` when unset."""
        return os.environ.get(self.name)

    def is_set(self) -> bool:
        """Whether the variable is present in the environment at all."""
        return self.name in os.environ

    def get(self):
        """The parsed value, falling back to the default (see module docs)."""
        raw = os.environ.get(self.name)
        if raw is None or raw == "":
            return self.default
        try:
            return self.parser(raw)
        except ValueError:
            return self.default

    @property
    def default_display(self) -> str:
        if self.default_text is not None:
            return self.default_text
        return repr(self.default)


def register(var: EnvVar) -> EnvVar:
    if var.name in REGISTRY:
        raise ValueError(f"environment variable {var.name!r} declared twice")
    REGISTRY[var.name] = var
    return var


def get(name: str) -> EnvVar:
    """The declared :class:`EnvVar` for ``name`` (:class:`KeyError` if none)."""
    return REGISTRY[name]


def all_vars() -> "list[EnvVar]":
    """Every declared variable, in registration (= documentation) order."""
    return list(REGISTRY.values())


# ---------------------------------------------------------------------------
# The declarations — one per variable, nowhere else
# ---------------------------------------------------------------------------

REPRO_BACKEND = register(EnvVar(
    name="REPRO_BACKEND",
    default="thread",
    parser=parse_str,
    description="Execution backend (serial / thread / process / cluster) "
    "when the caller does not pick one.",
    consumers=("repro.exec.backends",),
    default_text='"thread"',
))

REPRO_TRANSPORT = register(EnvVar(
    name="REPRO_TRANSPORT",
    default="fork",
    parser=parse_str,
    description="Worker transport (fork / tcp) for the worker-daemon "
    "backends when the caller does not pick one.",
    consumers=("repro.exec.transport",),
    default_text='"fork"',
))

REPRO_TRANSPORT_SHM = register(EnvVar(
    name="REPRO_TRANSPORT_SHM",
    default="auto",
    parser=parse_str,
    description="Array plane of frame protocol v2 (auto / inline / off): "
    "auto ships large ndarray buffers through pooled shared-memory "
    "segments on the fork transport (raw inline segments on tcp), inline "
    "forces bytes-on-wire segments everywhere, off falls back to v1 "
    "frames.",
    consumers=("repro.exec.arrayplane",),
    default_text='"auto"',
))

REPRO_KERNEL = register(EnvVar(
    name="REPRO_KERNEL",
    default="auto",
    parser=parse_str,
    description="Render kernel backend (auto / numpy / loops / numba) when "
    "the caller does not pick one; auto prefers the compiled path and "
    "falls back to numpy when numba is absent.",
    consumers=("repro.render.kernels.registry",),
    default_text='"auto"',
))

REPRO_ARTIFACT_DIR = register(EnvVar(
    name="REPRO_ARTIFACT_DIR",
    default=None,
    parser=parse_optional_str,
    description="Directory of the persistent on-disk artifact store; unset "
    "keeps runs hermetic (memory tier only).",
    consumers=("repro.exec.persist",),
    default_text="unset (no disk tier)",
))

REPRO_ARTIFACT_MAX_MB = register(EnvVar(
    name="REPRO_ARTIFACT_MAX_MB",
    default=4 << 30,
    parser=parse_mb_bytes,
    description="Byte bound of the on-disk artifact store, in (fractional) "
    "MiB; LRU-evicted by access time beyond it.",
    consumers=("repro.exec.persist",),
    default_text="4 GiB (floor 1 MiB)",
))

REPRO_DAG_WORKERS = register(EnvVar(
    name="REPRO_DAG_WORKERS",
    default=0,
    parser=parse_non_negative_int,
    description="Worker count of the stage-DAG pipeline scheduler when the "
    "caller does not pick one; 0 keeps the sequential staged path.",
    consumers=("repro.core.pipeline",),
    default_text="0 (sequential)",
))

REPRO_COST_DIR = register(EnvVar(
    name="REPRO_COST_DIR",
    default=None,
    parser=parse_optional_str,
    description="Directory of accumulated BENCH_*.json trajectories the "
    "measured cost model fits from; unset leaves planning on static hints.",
    consumers=("repro.exec.costmodel",),
    default_text="unset (static hints)",
))

REPRO_SANITIZE = register(EnvVar(
    name="REPRO_SANITIZE",
    default=False,
    parser=parse_bool,
    description="Enable the runtime concurrency sanitizer: instrumented "
    "locks (lock-order-cycle and across-map-boundary detection) and "
    "process-global mutation watchers; findings gate CI's sanitize leg.",
    consumers=("repro.analysis.sanitize",),
))

REPRO_SANITIZE_REPORT = register(EnvVar(
    name="REPRO_SANITIZE_REPORT",
    default=None,
    parser=parse_optional_str,
    description="Path the sanitizer's machine-readable JSON report is "
    "written to at interpreter exit; unset keeps the report in-process "
    "only (sanitize_report()).",
    consumers=("repro.analysis.sanitize",),
    default_text="unset (in-process only)",
))

REPRO_FULL = register(EnvVar(
    name="REPRO_FULL",
    default=False,
    parser=parse_bool,
    description="Sweep all four simulated scenes (and the full-sweep unit "
    "tests) as in the paper, instead of the tractable subset.",
    consumers=("benchmarks.conftest", "tests.test_selector_mixed_complexity"),
))

REPRO_BENCH_QUICK = register(EnvVar(
    name="REPRO_BENCH_QUICK",
    default=False,
    parser=parse_bool,
    description="Benchmark fast mode: smaller resolutions and shorter "
    "simulated traces for local iteration.",
    consumers=("benchmarks.conftest", "benchmarks.test_table1_realworld"),
))

REPRO_BENCH_SUITE = register(EnvVar(
    name="REPRO_BENCH_SUITE",
    default=None,
    parser=parse_optional_str,
    description="Suite label of the BENCH_<suite>.json trajectory; unset "
    "derives quick/figures from the run mode.",
    consumers=("benchmarks.conftest",),
    default_text="unset (derived)",
))

REPRO_BENCH_DIR = register(EnvVar(
    name="REPRO_BENCH_DIR",
    default=None,
    parser=parse_optional_str,
    description="Directory the BENCH_<suite>.json trajectory is written "
    "to; unset writes to the invocation cwd.",
    consumers=("benchmarks.conftest",),
    default_text="unset (cwd)",
))

REPRO_REQUIRE_WARM = register(EnvVar(
    name="REPRO_REQUIRE_WARM",
    default=False,
    parser=parse_bool,
    description="Assert at benchmark session end that zero profiles/bakes "
    "were recomputed (second run against a populated store).",
    consumers=("benchmarks.conftest",),
))

XDG_CACHE_HOME = register(EnvVar(
    name="XDG_CACHE_HOME",
    default=None,
    parser=parse_optional_str,
    description="Standard cache-directory override consulted for the "
    "default artifact-store location (~/.cache/repro).",
    consumers=("repro.exec.persist",),
    default_text="unset (~/.cache)",
))


# ---------------------------------------------------------------------------
# The reference table
# ---------------------------------------------------------------------------

def env_table_markdown() -> str:
    """The environment-variable reference table, as GitHub markdown.

    This exact text lives between the ``env-table`` markers in DESIGN.md;
    ``python -m repro.analysis --env-table`` prints it and
    ``tests/test_config_env.py`` fails when the checked-in copy is stale.
    """
    header = ["Variable", "Default", "Parser", "Description", "Consumers"]
    rows = [
        [
            f"`{var.name}`",
            var.default_display,
            f"`{var.parser.__name__}`",
            var.description,
            ", ".join(f"`{mod}`" for mod in var.consumers),
        ]
        for var in all_vars()
    ]
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)
