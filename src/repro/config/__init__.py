"""Typed runtime configuration for the reproduction.

The only module here is :mod:`repro.config.env` — the registry of every
environment variable the library and its test/benchmark harnesses read.
All ``os.environ`` access goes through it; raw reads elsewhere are a
static-analysis finding (rule ``REP-E401`` in :mod:`repro.analysis`).
"""

from repro.config import env

__all__ = ["env"]
