"""Command line of the project linter.

Usage::

    python -m repro.analysis [paths...]        # lint (default: src tests benchmarks)
    python -m repro.analysis --json ...        # machine-readable findings
    python -m repro.analysis --write-baseline  # accept current findings
    python -m repro.analysis --env-table       # print the env-var reference table
    python -m repro.analysis --list-rules      # print the rule catalog
    python -m repro.analysis --waivers ...     # audit every inline waiver

Exit status: 0 when every finding is baselined or inline-allowed, 1 when
any new finding exists, 2 on usage errors.  CI's ``lint`` job runs the
default invocation from the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import all_rules
from repro.config.env import env_table_markdown

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint of the project's determinism, fork-safety, "
        "lock-discipline and env-hygiene invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME, metavar="PATH",
        help="baseline file of accepted findings (default: "
        f"{DEFAULT_BASELINE_NAME}; a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write every current finding to the baseline file and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON on stdout",
    )
    parser.add_argument(
        "--env-table", action="store_true",
        help="print the environment-variable reference table and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--waivers", action="store_true",
        help="audit every inline '# repro-analysis: allow=...' waiver: "
        "location, waived rules, suppression count and reason",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()

    if args.env_table:
        print(env_table_markdown())
        return 0
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.severity:<7}  {rule.title}")
        return 0

    try:
        baseline = Baseline.load(args.baseline)
    except (ValueError, OSError) as error:
        print(f"error: cannot read baseline {args.baseline}: {error}",
              file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, rules, baseline=baseline)

    if args.waivers:
        for waiver in sorted(result.waivers, key=lambda w: (w.path, w.line)):
            rule_list = ",".join(sorted(waiver.rules))
            reason = waiver.reason or "(no reason given)"
            print(
                f"{waiver.path}:{waiver.line}: allow={rule_list} "
                f"suppresses {waiver.suppressed} finding(s) — {reason}"
            )
        print(f"{len(result.waivers)} active waiver(s) "
              f"({result.files_checked} files checked)")
        return 0

    if args.write_baseline:
        updated = Baseline.from_findings(
            list(result.findings) + list(result.baselined),
            reason="TODO: justify this accepted finding",
        )
        # Keep the human-written reasons of entries that still match.
        previous = {entry.key(): entry for entry in baseline.entries}
        updated.entries = [
            previous.get(entry.key(), entry) for entry in updated.entries
        ]
        updated.save(args.baseline)
        print(
            f"wrote {len(updated)} accepted finding(s) to {args.baseline} "
            f"({result.files_checked} files checked)"
        )
        return 0

    if args.as_json:
        print(json.dumps(result.as_dict(rules), indent=2))
        return result.exit_code

    for finding in result.findings:
        print(finding.format())
    summary = (
        f"{result.files_checked} files checked: "
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined"
    )
    if result.findings:
        print(summary)
        print(
            "fix the findings, waive one deliberately with an inline "
            "'# repro-analysis: allow=<rule> <reason>' comment, or accept "
            "pre-existing debt via --write-baseline (with a reason)."
        )
    else:
        print(summary)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
