"""AST-based static analysis of the project's own invariants.

The guarantees this reproduction sells — bit-identical golden reports
across backends and transports, content-addressed store keys stable
across processes, daemons that survive being shipped callables — rest on
invariants the type system cannot see.  This package lints for them at
review time instead of golden-test time:

* :mod:`repro.analysis.engine` — the visitor framework: findings with
  stable rule ids, inline ``# repro-analysis: allow=...`` waivers, JSON
  and human output;
* :mod:`repro.analysis.rules` — the rule catalog (determinism,
  fork/pickle safety, lock discipline, environment hygiene);
* :mod:`repro.analysis.baseline` — the checked-in list of accepted
  pre-existing findings, so new rules don't block CI retroactively;
* ``python -m repro.analysis src tests benchmarks`` — the CI gate
  (non-zero on any non-baselined finding).

See DESIGN.md § "Static analysis" for the catalog and the workflow for
adding a rule.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from repro.analysis.callgraph import (
    CallGraph,
    build_call_graph,
    concurrent_scope,
    worker_shipped_scope,
)
from repro.analysis.engine import (
    AnalysisResult,
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Waiver,
    analyze_module,
    analyze_paths,
    iter_python_files,
    load_module,
)
from repro.analysis.rules import DEFAULT_RULES, all_rules
from repro.analysis.sanitize import Sanitizer, sanitize_report

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_RULES",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Sanitizer",
    "Waiver",
    "all_rules",
    "analyze_module",
    "analyze_paths",
    "build_call_graph",
    "concurrent_scope",
    "iter_python_files",
    "load_module",
    "sanitize_report",
    "worker_shipped_scope",
]
