"""The project-invariant rule catalog.

Four rule families encode the invariants this reproduction's guarantees
rest on — the exact classes of bug PRs 3 and 4 fixed after the fact:

* ``REP-D1xx`` **determinism** — golden-artefact modules (``repro/core``,
  ``repro/exec``, ``repro/render``, ``repro/baking``) must not read
  wall-clocks, per-process ``hash()``/``id()`` values, unseeded RNG
  streams, ad-hoc OS entropy, or iterate sets into ordered output.
* ``REP-F2xx`` **fork/pickle safety** — callables shipped to worker
  daemons must not close over locks, sockets, open files or threads, and
  modules that fork must not also spawn threads.
* ``REP-L3xx`` **lock discipline** — a class that owns a
  ``threading.Lock`` (or a ``LockedLRU``) mutates its shared attributes
  only inside ``with self._lock`` / ``with self._lru.lock`` blocks.
* ``REP-E4xx`` **environment hygiene** — every environment variable is
  read through the typed :mod:`repro.config.env` registry; raw
  ``os.environ`` reads anywhere else are findings.

Rule ids are stable and never reused; retired rules leave a tombstone
comment here.  Adding a rule: subclass :class:`~repro.analysis.engine.
Rule`, append an instance to :data:`DEFAULT_RULES`, add known-bad and
known-good fixtures in ``tests/test_analysis_rules.py``, then triage the
hits on the real tree (fix, inline-allow with a reason, or baseline).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ProjectRule, Rule


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attr_tuple(node) -> "tuple | None":
    """``("self", "x", "lock")`` for ``self.x.lock``, else ``None``."""
    name = dotted_name(node)
    return tuple(name.split(".")) if name else None


def build_parent_map(tree) -> dict:
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def self_attr_base(node) -> "str | None":
    """The first attribute after ``self`` in a target expression.

    ``self.stats.hits`` -> ``"stats"``; ``self._store[key]`` -> ``"_store"``;
    anything not rooted at ``self`` -> ``None``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(inner, ast.Name)
            and inner.id == "self"
        ):
            return node.attr
        node = inner
    return None


def literal_arg(call: ast.Call) -> "str | None":
    """The first positional argument when it is a string literal."""
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


# ---------------------------------------------------------------------------
# REP-D1xx — determinism in golden-artefact modules
# ---------------------------------------------------------------------------

class BuiltinHashRule(Rule):
    """``hash()`` is salted per process (PYTHONHASHSEED): a content key or
    filename derived from it differs between two invocations, which is the
    exact PR 3 bug that broke cross-process artifact-store digests."""

    rule_id = "REP-D101"
    title = "builtin hash() in a golden-artefact module"
    severity = "error"

    def check(self, module):
        if not module.in_golden_scope:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module, node,
                    "builtin hash() is process-salted and unstable across "
                    "invocations; derive digests from a canonical encoding "
                    "(e.g. repro.exec.persist.key_filename) instead",
                )


class BuiltinIdRule(Rule):
    """``id()`` is an address — unstable across processes and reused within
    one; it must never feed a key, an ordering, or persisted output."""

    rule_id = "REP-D102"
    title = "builtin id() in a golden-artefact module"
    severity = "error"

    def check(self, module):
        if not module.in_golden_scope:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield self.finding(
                    module, node,
                    "builtin id() is a process-local address; use explicit "
                    "content identity for keys and orderings",
                )


#: Wall-clock reads that poison golden output.  ``time.perf_counter`` /
#: ``time.monotonic`` stay legal: timings are reported, never keyed on.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}


class WallClockRule(Rule):
    rule_id = "REP-D103"
    title = "wall-clock read in a golden-artefact module"
    severity = "warning"

    def check(self, module):
        if not module.in_golden_scope:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"{name}() reads the wall clock; golden artefacts must "
                    "be pure functions of their inputs (perf_counter / "
                    "monotonic are fine for reported timings)",
                )


#: ``np.random`` attributes that are *not* the legacy seeded-nowhere global
#: state and therefore remain legal in golden modules.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class UnseededRngRule(Rule):
    """Unseeded randomness in a golden module: the stdlib ``random``
    module, the legacy ``np.random.*`` global state, and argument-less
    ``np.random.default_rng()``.  Streams must come from
    ``repro.utils.rng.make_rng``/``derive_rng`` or — per shard —
    ``repro.exec.shard_rng`` keyed by the item index (the PR 4 contract)."""

    rule_id = "REP-D104"
    title = "unseeded / global-state RNG in a golden-artefact module"
    severity = "error"

    def check(self, module):
        if not module.in_golden_scope:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) == 2:
                yield self.finding(
                    module, node,
                    f"stdlib {name}() draws from hidden global state; use a "
                    "seeded numpy Generator (repro.utils.rng.make_rng)",
                )
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_ALLOWED
            ):
                yield self.finding(
                    module, node,
                    f"{name}() uses numpy's legacy global RNG state; use a "
                    "seeded Generator (make_rng / derive_rng / shard_rng)",
                )
            elif (
                len(parts) >= 2
                and parts[-1] == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    module, node,
                    "default_rng() without a seed draws fresh OS entropy per "
                    "call — the PR 4 seed-aliasing class of bug; thread a "
                    "seed through, or draw repro.exec.fresh_seed_root() "
                    "once per map",
                )


#: Functions blessed to draw OS entropy; everything else must receive a
#: seed (or a root from ``fresh_seed_root``) from its caller.
_ENTROPY_ALLOWED_FUNCTIONS = ("fresh_seed_root",)

_ENTROPY_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}


class EntropyRule(Rule):
    """Ad-hoc OS entropy (``os.urandom``, ``secrets.*``, argument-less
    ``SeedSequence()``) outside the blessed ``fresh_seed_root`` helper.
    PR 4's seed-aliasing fix centralised entropy there so nondeterministic
    streams are shard-count-invariant and can never alias seeded runs."""

    rule_id = "REP-D105"
    title = "OS entropy outside fresh_seed_root in a golden-artefact module"
    severity = "error"

    def check(self, module):
        if not module.in_golden_scope:
            return
        yield from self._walk(module, module.tree, inside_blessed=False)

    def _walk(self, module, node, inside_blessed):
        for child in ast.iter_child_nodes(node):
            blessed = inside_blessed
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                blessed = child.name in _ENTROPY_ALLOWED_FUNCTIONS
            if isinstance(child, ast.Call) and not blessed:
                name = dotted_name(child.func)
                parts = (name or "").split(".")
                entropy = (
                    name in _ENTROPY_CALLS
                    or parts[0] == "secrets"
                    or (
                        parts[-1] == "SeedSequence"
                        and not child.args
                        and not child.keywords
                    )
                )
                if entropy:
                    yield self.finding(
                        module, child,
                        f"{name}() draws OS entropy outside fresh_seed_root; "
                        "nondeterministic streams must flow from one "
                        "fresh_seed_root() draw per map so they stay "
                        "shard-count-invariant and never alias seeded runs",
                    )
            yield from self._walk(module, child, blessed)


#: Call consumers that materialise iteration order from their argument.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "next"}


class SetIterationRule(Rule):
    """Iterating a set into ordered output: set iteration order depends on
    element hashes, hence (for str/bytes keys) on the per-process hash
    seed.  Anything ordered or persisted must go through ``sorted()``."""

    rule_id = "REP-D106"
    title = "set iteration feeding ordered output in a golden-artefact module"
    severity = "error"

    @staticmethod
    def _is_set_expr(node) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, module):
        if not module.in_golden_scope:
            return
        parents = build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not self._is_set_expr(node):
                continue
            parent = parents.get(node)
            ordered = False
            if isinstance(parent, ast.For) and parent.iter is node:
                ordered = True
            elif isinstance(parent, ast.comprehension) and parent.iter is node:
                ordered = True
            elif isinstance(parent, ast.Call) and node in parent.args:
                func = parent.func
                if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
                    ordered = True
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    ordered = True
            if ordered:
                yield self.finding(
                    module, node,
                    "set iteration order is hash-dependent and varies across "
                    "processes; wrap in sorted(...) before it feeds ordered "
                    "or persisted output",
                )


# ---------------------------------------------------------------------------
# REP-F2xx — transport / fork safety
# ---------------------------------------------------------------------------

#: Constructors whose results must never be captured by a callable shipped
#: to a worker: value kind -> dotted call names.  The ``make_lock`` /
#: ``make_rlock`` seams of :mod:`repro.analysis.sanitize` construct (and
#: possibly wrap) real locks, so they count as lock constructors here and
#: in the REP-L3xx family.
_UNPICKLABLE_CONSTRUCTORS = {
    "lock": {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
        "Lock", "RLock", "make_lock", "make_rlock",
        "sanitize.make_lock", "sanitize.make_rlock",
    },
    "open file": {"open", "io.open", "tempfile.NamedTemporaryFile",
                  "tempfile.TemporaryFile", "gzip.open"},
    "socket": {"socket.socket", "socket.socketpair",
               "socket.create_connection", "socket.create_server"},
    "thread": {"threading.Thread"},
    # A SharedMemory handle owns a file descriptor and a mapping of *this*
    # process; captured in a shipped closure it pickles as a name-only
    # re-attach whose lifetime contract (who unlinks? who reaps on death?)
    # silently diverges from the transport's segment pool.  Arrays riding
    # the v2 array plane cross as plain ndarrays — tasks never need the
    # handle itself.
    "shared-memory segment": {
        "SharedMemory", "shared_memory.SharedMemory",
        "multiprocessing.shared_memory.SharedMemory",
    },
}


def _constructor_kind(call_name: "str | None") -> "str | None":
    for kind, names in _UNPICKLABLE_CONSTRUCTORS.items():
        if call_name in names:
            return kind
    return None


class _FunctionScope:
    def __init__(self, node):
        self.node = node
        self.bindings: dict = {}   # name -> unpicklable kind
        self.funcdefs: dict = {}   # name -> nested FunctionDef node


def _record_bindings(scope: _FunctionScope, stmt) -> None:
    """Track names bound to unpicklable resources inside one function."""
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
        kind = _constructor_kind(dotted_name(stmt.value.func))
        if kind:
            for target in stmt.targets:
                targets = target.elts if isinstance(target, ast.Tuple) else [target]
                for name in targets:
                    if isinstance(name, ast.Name):
                        scope.bindings[name.id] = kind
    elif isinstance(stmt, ast.With):
        for item in stmt.items:
            if not isinstance(item.context_expr, ast.Call):
                continue
            kind = _constructor_kind(dotted_name(item.context_expr.func))
            if kind and isinstance(item.optional_vars, ast.Name):
                scope.bindings[item.optional_vars.id] = kind
    elif isinstance(stmt, ast.FunctionDef):
        scope.funcdefs[stmt.name] = stmt


def _free_names(func_node) -> set:
    """Names a lambda / nested def loads but does not bind itself."""
    bound = {arg.arg for arg in (
        func_node.args.posonlyargs + func_node.args.args + func_node.args.kwonlyargs
    )}
    for extra in (func_node.args.vararg, func_node.args.kwarg):
        if extra is not None:
            bound.add(extra.arg)
    loaded = set()
    body = func_node.body if isinstance(func_node.body, list) else [func_node.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
                else:
                    bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
    return loaded - bound


class WorkerClosureRule(Rule):
    """A callable handed to ``<...backend>.map(...)`` or ``<...host>.run(...)``
    that closes over a lock, socket, open file, or thread.  Such state
    either fails to pickle (TCP transport) or is silently duplicated into
    a child that cannot use it (fork transport)."""

    rule_id = "REP-F201"
    title = "worker-shipped callable captures unpicklable state"
    severity = "error"

    @staticmethod
    def _is_worker_dispatch(call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute) or not call.args:
            return False
        receiver = (dotted_name(func.value) or "").lower()
        if func.attr == "map" and "backend" in receiver:
            return True
        return func.attr == "run" and "host" in receiver

    def check(self, module):
        yield from self._walk(module, module.tree, [])

    def _walk(self, module, node, scopes):
        for child in ast.iter_child_nodes(node):
            pushed = False
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _FunctionScope(child)
                for stmt in ast.walk(child):
                    _record_bindings(scope, stmt)
                scopes = scopes + [scope]
                pushed = True
            if isinstance(child, ast.Call) and self._is_worker_dispatch(child):
                yield from self._check_callable(module, child, child.args[0], scopes)
            yield from self._walk(module, child, scopes)
            if pushed:
                scopes = scopes[:-1]

    def _check_callable(self, module, call, callable_arg, scopes):
        target = None
        if isinstance(callable_arg, ast.Lambda):
            target = callable_arg
        elif isinstance(callable_arg, ast.Name):
            for scope in reversed(scopes):
                if callable_arg.id in scope.funcdefs:
                    target = scope.funcdefs[callable_arg.id]
                    break
        if target is None:
            return
        for name in sorted(_free_names(target)):
            for scope in reversed(scopes):
                kind = scope.bindings.get(name)
                if kind is not None:
                    yield self.finding(
                        module, call,
                        f"callable shipped to workers captures {name!r}, "
                        f"bound to a {kind}; shipped callables must be "
                        "module-level (or registered) and close only over "
                        "picklable data",
                    )
                    break


class ThreadInForkingModuleRule(Rule):
    """``threading.Thread`` in a module that also calls ``os.fork``: a
    fork only duplicates the calling thread, so locks held by the others
    are copied locked into the child — a classic deadlock factory."""

    rule_id = "REP-F202"
    title = "thread creation in a module that forks"
    severity = "error"

    def check(self, module):
        forks = any(
            isinstance(node, ast.Call) and dotted_name(node.func) == "os.fork"
            for node in ast.walk(module.tree)
        )
        if not forks:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "threading.Thread"
            ):
                yield self.finding(
                    module, node,
                    "threading.Thread created in a module that os.fork()s; "
                    "forked children inherit locked locks from threads that "
                    "no longer exist — keep forking modules single-threaded",
                )


# ---------------------------------------------------------------------------
# REP-L3xx — lock discipline
# ---------------------------------------------------------------------------

_LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "Lock", "RLock",
    "threading.Condition", "make_lock", "make_rlock",
    "sanitize.make_lock", "sanitize.make_rlock",
}

#: Mutating methods of the plain containers a lock-owning class shares.
_CONTAINER_MUTATORS = {
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "move_to_end",
}

_CONSTRUCTOR_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}


def _is_container_value(value) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("dict", "list", "set", "OrderedDict",
                                 "defaultdict", "deque")
    return False


def _dataclass_container_fields(class_node) -> set:
    """Class-level ``x: dict = field(default_factory=dict)`` attributes."""
    names = set()
    for stmt in class_node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        value = stmt.value
        if not isinstance(value, ast.Call):
            continue
        if (dotted_name(value.func) or "").split(".")[-1] != "field":
            continue
        for keyword in value.keywords:
            if keyword.arg == "default_factory":
                factory = dotted_name(keyword.value) or ""
                if factory.split(".")[-1] in ("dict", "list", "set",
                                              "OrderedDict", "defaultdict",
                                              "deque"):
                    names.add(stmt.target.id)
    return names


class LockDisciplineRule(Rule):
    """A class that owns a ``threading.Lock``/``RLock`` or a ``LockedLRU``
    must mutate its shared attributes only inside the corresponding
    ``with self.<lock>:`` / ``with self.<lru>.lock:`` block.  Constructors
    are exempt (no concurrent access before ``__init__`` returns)."""

    rule_id = "REP-L301"
    title = "shared attribute mutated outside the owning lock"
    severity = "error"

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module, class_node):
        lock_attrs, lru_attrs = set(), set()
        container_attrs = _dataclass_container_fields(class_node)
        methods = [
            stmt for stmt in class_node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            constructor = method.name in _CONSTRUCTOR_EXEMPT_METHODS
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    attr = (
                        target.attr
                        if isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        else None
                    )
                    if attr is None:
                        continue
                    call_name = (
                        dotted_name(stmt.value.func) or ""
                        if isinstance(stmt.value, ast.Call)
                        else ""
                    )
                    if call_name in _LOCK_CONSTRUCTORS:
                        lock_attrs.add(attr)
                    elif call_name.split(".")[-1] == "LockedLRU":
                        lru_attrs.add(attr)
                    elif constructor and _is_container_value(stmt.value):
                        container_attrs.add(attr)
        if not lock_attrs and not lru_attrs:
            return
        guards = {("self", attr) for attr in lock_attrs}
        guards.update(("self", attr, "lock") for attr in lru_attrs)
        exempt_attrs = lock_attrs | lru_attrs
        for method in methods:
            if method.name in _CONSTRUCTOR_EXEMPT_METHODS:
                continue
            yield from self._check_method(
                module, method, guards, exempt_attrs, container_attrs,
                guarded=False,
            )

    def _check_method(self, module, node, guards, exempt, containers, guarded):
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, ast.With):
                held = any(
                    attr_tuple(item.context_expr) in guards
                    for item in child.items
                )
                child_guarded = guarded or held
            if not child_guarded:
                yield from self._check_statement(module, child, exempt, containers)
            yield from self._check_method(
                module, child, guards, exempt, containers, child_guarded
            )

    def _check_statement(self, module, node, exempt, containers):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                return  # a bare annotation binds nothing
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base = self_attr_base(target)
                if base is not None and base not in exempt:
                    yield self.finding(
                        module, node,
                        f"mutation of self.{base} outside the owning lock; "
                        "wrap in the class's `with self.<lock>:` block",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = self_attr_base(target)
                if base is not None and base not in exempt:
                    yield self.finding(
                        module, node,
                        f"deletion on self.{base} outside the owning lock; "
                        "wrap in the class's `with self.<lock>:` block",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _CONTAINER_MUTATORS:
                base = self_attr_base(node.func.value)
                if base is not None and base in containers and base not in exempt:
                    yield self.finding(
                        module, node,
                        f"self.{base}.{node.func.attr}(...) mutates a shared "
                        "container outside the owning lock; wrap in the "
                        "class's `with self.<lock>:` block",
                    )


# ---------------------------------------------------------------------------
# REP-E4xx — environment hygiene
# ---------------------------------------------------------------------------

class RawEnvironRule(Rule):
    """A raw environment read outside the :mod:`repro.config.env` registry.

    Copies for subprocess environments (``dict(os.environ)``,
    ``os.environ.copy()``) and writes (tests legitimately mutate the
    environment) are not findings — only per-variable reads, which are
    where defaults fork and drift.
    """

    rule_id = "REP-E401"
    title = "raw os.environ read outside repro.config.env"
    severity = "error"

    _READ_CALLS = {"os.environ.get", "os.environ.setdefault", "os.getenv"}

    def _message(self, var_name) -> str:
        which = f"of {var_name!r} " if var_name else ""
        return (
            f"raw environment read {which}outside repro.config.env; declare "
            "the variable there once (default + parser) and call "
            "env.<NAME>.get()"
        )

    def check(self, module):
        if module.is_env_registry:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._READ_CALLS:
                    yield self.finding(module, node, self._message(literal_arg(node)))
            elif isinstance(node, ast.Subscript):
                if (
                    isinstance(node.ctx, ast.Load)
                    and dotted_name(node.value) == "os.environ"
                ):
                    var = None
                    if isinstance(node.slice, ast.Constant):
                        var = node.slice.value
                    yield self.finding(module, node, self._message(var))
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.In, ast.NotIn))
                        and dotted_name(comparator) == "os.environ"
                    ):
                        var = None
                        if isinstance(node.left, ast.Constant):
                            var = node.left.value
                        message = self._message(var).replace(
                            "env.<NAME>.get()", "env.<NAME>.is_set()"
                        )
                        yield self.finding(module, node, message)


# ---------------------------------------------------------------------------
# Interprocedural rules — REP-F2xx reachability and REP-G5xx global state
# ---------------------------------------------------------------------------

#: One call-graph build per module set: every project rule in one
#: ``analyze_paths`` run receives the same context list, so the graph is
#: memoised on the sources (single-entry — runs over different trees
#: replace it).
_GRAPH_CACHE: dict = {}


def _graph_for(modules):
    from repro.analysis import callgraph

    key = tuple((module.path, module.source) for module in modules)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE.clear()
        _GRAPH_CACHE[key] = callgraph.build_call_graph(modules)
    return _GRAPH_CACHE[key]


def _own_body_nodes(func_node):
    """The nodes of one function's own body, excluding nested functions
    and lambdas (those are separate functions with their own scope entry,
    so hazards inside them are reported exactly once, there)."""
    stack = list(func_node.body) if isinstance(func_node.body, list) else [func_node.body]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.append(child)


class _ReachabilityRule(ProjectRule):
    """Shared driver: compute a scope over the call graph, then run
    :meth:`check_function` on every function inside it, attaching the
    witness chain that makes the function reachable."""

    def scope(self, graph) -> dict:
        raise NotImplementedError

    def check_function(self, info, chain):
        raise NotImplementedError

    def check_project(self, modules):
        from repro.analysis.callgraph import format_chain

        graph = _graph_for(modules)
        for qualname, chain in sorted(self.scope(graph).items()):
            info = graph.index.functions[qualname]
            for node, message in self.check_function(info, chain):
                via = (
                    " (shipped entry point)" if len(chain) == 1
                    else f" (reachable via {format_chain(chain)})"
                )
                yield self.finding(info.module, node, message + via)


class ReachableImpurityRule(_ReachabilityRule):
    """Wall-clock reads, unseeded RNG draws and raw environment reads
    anywhere in the transitive closure of a worker-shipped callable.  The
    lexical REP-D1xx/E4xx rules scope to golden modules and single files;
    a shipped task must be a pure function of its item *through every
    helper it calls*, or shards stop being bit-identical across worker
    counts and transports."""

    rule_id = "REP-F203"
    title = "impurity reachable from a worker-shipped callable"
    severity = "error"

    def scope(self, graph):
        from repro.analysis.callgraph import worker_shipped_scope

        return worker_shipped_scope(graph)

    def check_function(self, info, chain):
        for node in _own_body_nodes(info.node):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield node, (
                        f"{name}() reads the wall clock inside the "
                        "worker-shipped scope; shipped tasks must be pure "
                        "functions of their item"
                    )
                    continue
                parts = (name or "").split(".")
                if name and parts[0] == "random" and len(parts) == 2:
                    yield node, (
                        f"stdlib {name}() draws global-state randomness "
                        "inside the worker-shipped scope; thread a seeded "
                        "Generator through the task item"
                    )
                elif (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_ALLOWED
                ):
                    yield node, (
                        f"{name}() uses numpy's legacy global RNG inside "
                        "the worker-shipped scope; every worker would draw "
                        "an independent, unseeded stream"
                    )
                elif (
                    parts and parts[-1] == "default_rng"
                    and not node.args and not node.keywords
                ):
                    yield node, (
                        "default_rng() without a seed inside the "
                        "worker-shipped scope draws fresh OS entropy per "
                        "shard; derive per-item streams with shard_rng"
                    )
                elif name in RawEnvironRule._READ_CALLS and not info.module.is_env_registry:
                    yield node, (
                        f"{name}() reads the environment inside the "
                        "worker-shipped scope; workers inherit (or miss) "
                        "env mutations invisibly — read the typed registry "
                        "before shipping and pass values through the item"
                    )
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and dotted_name(node.value) == "os.environ"
                and not info.module.is_env_registry
            ):
                yield node, (
                    "os.environ[...] read inside the worker-shipped scope; "
                    "workers inherit (or miss) env mutations invisibly — "
                    "read the typed registry before shipping"
                )


#: File-handle constructors whose acquisition inside a forked worker body
#: is a finding (the handle is created in the child, the descriptor/lock
#: state never propagates back, and two shards may race the same path).
_FILE_HANDLE_CALLS = {
    "open", "io.open", "gzip.open", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
}


class ReachableLockRule(_ReachabilityRule):
    """Lock construction, explicit ``.acquire()`` and file-handle opens in
    the transitive closure of a forked worker body.  A lock taken in a
    forked child synchronises nothing (the parent's threads aren't
    there), and a lock *inherited* locked is a deadlock; file handles
    opened per shard race each other on shared paths."""

    rule_id = "REP-F204"
    title = "lock / file-handle acquisition reachable from a forked worker body"
    severity = "error"

    def scope(self, graph):
        from repro.analysis.callgraph import worker_shipped_scope

        return worker_shipped_scope(graph)

    def check_function(self, info, chain):
        for node in _own_body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _UNPICKLABLE_CONSTRUCTORS["lock"]:
                yield node, (
                    f"{name}() constructs a lock inside the forked-worker "
                    "scope; it synchronises nothing across shards — hoist "
                    "shared state out of the shipped task"
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
                yield node, (
                    f"explicit {dotted_name(node.func)}() inside the "
                    "forked-worker scope; a lock acquired in a forked child "
                    "guards nothing in the parent and can inherit a locked "
                    "state it can never release"
                )
            elif name in _FILE_HANDLE_CALLS:
                yield node, (
                    f"{name}() opens a file handle inside the forked-worker "
                    "scope; per-shard handles race on shared paths — return "
                    "data and let the parent persist it"
                )


class ConcurrentGlobalStateRule(_ReachabilityRule):
    """Mutation of process-global library state reachable from code that
    runs concurrently (thread-backend tasks and stage-DAG node bodies).
    This is exactly the PR 8 ``QualityModel.fit`` race: a
    ``simplefilter("error", ...)`` probe in one fit flips the warning
    filters under every concurrent fit.  ``"ignore"``-action filter calls
    are exempt — widening an ignore is idempotent and an overlapping
    restore cannot un-suppress an exception path."""

    rule_id = "REP-G501"
    title = "process-global state mutated in concurrently-running code"
    severity = "error"

    _FILTER_CALLS = {"warnings.simplefilter", "warnings.filterwarnings"}
    _ALWAYS_MUTATORS = {
        "np.seterr", "numpy.seterr", "random.seed", "np.random.seed",
        "numpy.random.seed", "os.putenv",
    }

    def scope(self, graph):
        from repro.analysis.callgraph import concurrent_scope

        return concurrent_scope(graph)

    def check_function(self, info, chain):
        for node in _own_body_nodes(info.node):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._FILTER_CALLS:
                    if literal_arg(node) == "ignore":
                        continue
                    yield node, (
                        f"{name}(...) mutates the process-wide warning "
                        "filters in concurrently-running code — the PR 8 "
                        "QualityModel race; read the outcome from data "
                        "(e.g. pcov finiteness) under an 'ignore' filter "
                        "instead of probing via 'error'"
                    )
                elif name in self._ALWAYS_MUTATORS:
                    yield node, (
                        f"{name}(...) mutates process-global state in "
                        "concurrently-running code; every in-flight task "
                        "sees the flip mid-computation"
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and dotted_name(target.value) == "os.environ"
                    ):
                        yield target, (
                            "os.environ[...] assignment in "
                            "concurrently-running code mutates process-global "
                            "state under every in-flight task"
                        )


# ---------------------------------------------------------------------------
# REP-W0xx — waiver hygiene
# ---------------------------------------------------------------------------

class StaleWaiverRule(ProjectRule):
    """An inline ``# repro-analysis: allow=...`` that suppresses zero
    findings.  Dead waivers are worse than dead code: they pre-authorise a
    future bug at that line.  Runs last in the catalog, after every other
    rule has credited the waivers it used (see
    :func:`repro.analysis.engine.analyze_paths`)."""

    rule_id = "REP-W001"
    title = "stale inline waiver suppresses no finding"
    severity = "warning"

    def check_project(self, modules):
        for module in modules:
            for waiver in module.waivers:
                if waiver.suppressed:
                    continue
                yield Finding(
                    path=module.path,
                    line=waiver.line,
                    col=1,
                    rule=self.rule_id,
                    severity=self.severity,
                    message=(
                        "inline waiver for "
                        f"{', '.join(sorted(waiver.rules))} suppresses no "
                        "finding; the code it excused is gone — delete the "
                        "comment (or fix the rule list)"
                    ),
                )


# ---------------------------------------------------------------------------
# The default catalog
# ---------------------------------------------------------------------------

DEFAULT_RULES = (
    BuiltinHashRule(),
    BuiltinIdRule(),
    WallClockRule(),
    UnseededRngRule(),
    EntropyRule(),
    SetIterationRule(),
    WorkerClosureRule(),
    ThreadInForkingModuleRule(),
    ReachableImpurityRule(),
    ReachableLockRule(),
    LockDisciplineRule(),
    RawEnvironRule(),
    ConcurrentGlobalStateRule(),
    # Last on purpose: it reads the suppression stats every other rule
    # left on the module contexts.
    StaleWaiverRule(),
)


def all_rules() -> tuple:
    """The default rule catalog, in reporting order."""
    return DEFAULT_RULES
