"""The runtime concurrency sanitizer (``REPRO_SANITIZE=1``).

The static pass (:mod:`repro.analysis.callgraph`) proves what *can*
happen; this module watches what *does*.  When ``REPRO_SANITIZE`` is set
at import time, the library's own locks — ``LockedLRU``, the transport
lifecycle lock, the stage-timer lock — are constructed through the
:func:`make_lock`/:func:`make_rlock` seams and wrapped so every
acquisition is recorded against the acquiring thread:

* **Lock-order graph.**  Acquiring B while holding A adds the edge
  ``A -> B``; a cycle in that graph is a potential deadlock (two threads
  interleaving the opposite orders), reported even if this run happened
  not to interleave them.
* **Map boundaries.**  ``Backend.map`` / ``WorkerHost.run`` mark a
  boundary; entering one while holding a sanitized lock — or acquiring a
  new lock inside one while still holding a pre-boundary lock — is
  reported: the map blocks on worker completion, so any worker that
  needs the held lock deadlocks.
* **Global-state mutation.**  The same mutators rule ``REP-G501`` flags
  statically (``warnings.simplefilter``/``filterwarnings`` with a
  non-``"ignore"`` action, ``random.seed``, ``np.seterr``,
  ``os.putenv`` — which ``os.environ[...] =`` routes through) are
  patched; a mutation while more than one sanitized task is in flight is
  the PR 8 ``QualityModel`` race class, reported with the mutator and
  thread names.

Findings accumulate in a machine-readable report
(:func:`sanitize_report`); when ``REPRO_SANITIZE_REPORT`` names a path,
the report is written there as JSON at interpreter exit — CI's
``sanitize`` leg runs the whole unit tier under the sanitizer and fails
on any finding.  Tests exercise private :class:`Sanitizer` instances so
deliberate findings never leak into the global report.

Everything here is observability: wrapped locks delegate to real
``threading`` locks, spans are no-ops when the sanitizer is off, and no
recorded fact ever feeds a golden artefact.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import warnings
from dataclasses import dataclass, field

from repro.config import env as repro_env


@dataclass
class _ThreadState:
    """Per-thread sanitizer state (lives in a ``threading.local``)."""

    #: keys of sanitized locks currently held, in acquisition order
    held: list = field(default_factory=list)
    #: ``len(held)`` snapshots at each open map boundary, innermost last
    boundaries: list = field(default_factory=list)
    #: nesting depth of task spans on this thread
    spans: int = 0


class SanitizedLock:
    """A recording wrapper around a real ``threading`` lock.

    Supports the context-manager protocol plus ``acquire``/``release``
    with the underlying signatures; re-entrant acquisition (RLock) is
    tracked but adds no self-edges.
    """

    def __init__(self, sanitizer: "Sanitizer", lock, name: str, key: int):
        self._sanitizer = sanitizer
        self._lock = lock
        self.name = name
        self.key = key

    def acquire(self, *args, **kwargs) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._sanitizer._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._note_release(self)
        self._lock.release()

    def locked(self) -> bool:  # pragma: no cover - parity shim
        probe = getattr(self._lock, "locked", None)
        return probe() if probe is not None else False

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class _Span:
    """One task span: counts the thread as in flight while open."""

    def __init__(self, sanitizer: "Sanitizer"):
        self._sanitizer = sanitizer

    def __enter__(self):
        self._sanitizer._enter_span()
        return self

    def __exit__(self, *exc) -> bool:
        self._sanitizer._exit_span()
        return False


class _Boundary:
    """One ``Backend.map``-shaped boundary on the entering thread."""

    def __init__(self, sanitizer: "Sanitizer", label: str):
        self._sanitizer = sanitizer
        self.label = label

    def __enter__(self):
        self._sanitizer._enter_boundary(self.label)
        return self

    def __exit__(self, *exc) -> bool:
        self._sanitizer._exit_boundary()
        return False


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Sanitizer:
    """One independent sanitizer: lock graph, spans, watchers, findings.

    The process-wide instance lives behind :func:`install`; tests build
    private instances so deliberate findings stay out of the global
    report.
    """

    def __init__(self, name: str = "sanitizer"):
        self.name = name
        self._mutex = threading.Lock()  # guards everything below
        self._local = threading.local()
        self._next_key = 0
        self._lock_names: dict = {}      # key -> name
        self._edges: dict = {}           # key -> {key: (holder name, taken name)}
        self._findings: list = []
        self._finding_keys: set = set()
        self._in_flight = 0
        self._watching = False
        self._patched: dict = {}

    # -- per-thread state ----------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            # repro-analysis: allow=REP-L301 thread-local slot, no shared state
            state = self._local.state = _ThreadState()
        return state

    # -- findings ------------------------------------------------------------

    def _record(self, kind: str, detail: str, **extra) -> None:
        with self._mutex:
            key = (kind, detail)
            if key in self._finding_keys:
                return
            self._finding_keys.add(key)
            entry = {"kind": kind, "detail": detail,
                     "thread": threading.current_thread().name}
            entry.update(extra)
            self._findings.append(entry)

    @property
    def findings(self) -> list:
        with self._mutex:
            return list(self._findings)

    def report(self) -> dict:
        with self._mutex:
            return {
                "enabled": True,
                "name": self.name,
                "locks": len(self._lock_names),
                "edges": sum(len(out) for out in self._edges.values()),
                "findings": [dict(entry) for entry in self._findings],
            }

    # -- lock wrapping and the order graph -----------------------------------

    def wrap_lock(self, lock, name: str) -> SanitizedLock:
        with self._mutex:
            key = self._next_key
            self._next_key += 1
            self._lock_names[key] = name
        return SanitizedLock(self, lock, name, key)

    def make_lock(self, name: str = "lock") -> SanitizedLock:
        return self.wrap_lock(threading.Lock(), name)

    def make_rlock(self, name: str = "lock") -> SanitizedLock:
        return self.wrap_lock(threading.RLock(), name)

    def _note_acquire(self, lock: SanitizedLock) -> None:
        state = self._state()
        reentrant = lock.key in state.held
        if not reentrant:
            for held_key in state.held:
                if held_key != lock.key:
                    self._add_edge(held_key, lock.key)
            outermost = min(state.boundaries) if state.boundaries else 0
            if outermost > 0 and len(state.held) >= outermost:
                self._record(
                    "lock-across-map",
                    f"acquired {lock.name!r} inside a map boundary while "
                    f"holding {self._lock_names.get(state.held[0], '?')!r} "
                    "from outside it",
                )
        state.held.append(lock.key)

    def _note_release(self, lock: SanitizedLock) -> None:
        state = self._state()
        for index in range(len(state.held) - 1, -1, -1):
            if state.held[index] == lock.key:
                del state.held[index]
                break

    def _add_edge(self, source: int, target: int) -> None:
        with self._mutex:
            out = self._edges.setdefault(source, {})
            if target in out:
                return
            out[target] = (self._lock_names[source], self._lock_names[target])
            cycle = self._find_cycle(target, source)
        if cycle is not None:
            names = [self._lock_names[key] for key in cycle]
            self._record(
                "lock-order-cycle",
                "lock order cycle " + " -> ".join(names + [names[0]]) +
                " (two threads interleaving opposite orders deadlock)",
                locks=sorted(set(names)),
            )

    def _find_cycle(self, start: int, goal: int) -> "list | None":
        """A path ``start -> ... -> goal`` in the edge graph (caller holds
        the mutex); with the new edge ``goal -> start`` it is a cycle."""
        stack = [(start, [goal, start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node == goal and len(path) > 2:
                return path[:-1]
            if node in seen:
                continue
            seen.add(node)
            for neighbour in sorted(self._edges.get(node, ())):
                if neighbour == goal:
                    return path
                stack.append((neighbour, path + [neighbour]))
        return None

    # -- spans and boundaries ------------------------------------------------

    def task_span(self) -> _Span:
        return _Span(self)

    def _enter_span(self) -> None:
        state = self._state()
        state.spans += 1
        if state.spans == 1:
            with self._mutex:
                self._in_flight += 1

    def _exit_span(self) -> None:
        state = self._state()
        state.spans -= 1
        if state.spans == 0:
            with self._mutex:
                self._in_flight -= 1

    def map_boundary(self, label: str = "map") -> _Boundary:
        return _Boundary(self, label)

    def _enter_boundary(self, label: str) -> None:
        state = self._state()
        if state.held:
            names = [self._lock_names.get(key, "?") for key in state.held]
            self._record(
                "lock-across-map",
                f"entered map boundary {label!r} holding "
                f"{', '.join(repr(name) for name in names)}; the map blocks "
                "on workers, so any worker needing the lock deadlocks",
            )
        state.boundaries.append(len(state.held))

    def _exit_boundary(self) -> None:
        state = self._state()
        if state.boundaries:
            state.boundaries.pop()

    # -- global-state watchers -----------------------------------------------

    def _flag_mutation(self, mutator: str, detail: str) -> None:
        with self._mutex:
            in_flight = self._in_flight
        if in_flight > 1:
            self._record(
                "global-state-mutation",
                f"{mutator} {detail} while {in_flight} sanitized tasks were "
                "in flight; every concurrent task sees the flip "
                "mid-computation",
                mutator=mutator,
            )

    def _watched_filter(self, original, mutator):
        def wrapper(action, *args, **kwargs):
            if action != "ignore":
                self._flag_mutation(mutator, f"set action {action!r}")
            return original(action, *args, **kwargs)
        return wrapper

    def _watched_mutator(self, original, mutator):
        def wrapper(*args, **kwargs):
            self._flag_mutation(mutator, "called")
            return original(*args, **kwargs)
        return wrapper

    def install_watchers(self) -> None:
        """Patch the process-global mutators REP-G501 names (idempotent).

        ``os.putenv`` covers ``os.environ[...] =`` (CPython routes item
        assignment through the module-global ``putenv``).  ``np.errstate``
        uses internal entry points and is not covered — the static rule
        still sees direct ``np.seterr`` calls.
        """
        with self._mutex:
            if self._watching:
                return
            self._watching = True
        import random

        targets = [
            (warnings, "simplefilter", self._watched_filter),
            (warnings, "filterwarnings", self._watched_filter),
            (random, "seed", self._watched_mutator),
            (os, "putenv", self._watched_mutator),
        ]
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a hard dep here
            numpy = None
        if numpy is not None:
            targets.append((numpy, "seterr", self._watched_mutator))
        for owner, attr, wrap in targets:
            original = getattr(owner, attr)
            mutator = f"{owner.__name__}.{attr}"
            with self._mutex:
                self._patched[(id(owner), attr)] = (owner, attr, original)
            setattr(owner, attr, wrap(original, mutator))

    def uninstall_watchers(self) -> None:
        with self._mutex:
            if not self._watching:
                return
            self._watching = False
            patched = list(self._patched.values())
            self._patched.clear()
        for owner, attr, original in patched:
            setattr(owner, attr, original)

    def watch(self):
        """Context manager: watchers installed inside the block (tests)."""
        sanitizer = self

        class _Watch:
            def __enter__(self):
                sanitizer.install_watchers()
                return sanitizer

            def __exit__(self, *exc):
                sanitizer.uninstall_watchers()
                return False

        return _Watch()

    def reset_runtime(self) -> None:
        """Forget in-flight threads and held stacks (fork handler: the
        child inherits only the forking thread, so inherited counts lie)."""
        with self._mutex:
            self._in_flight = 0
        # repro-analysis: allow=REP-L301 fork child is single-threaded
        self._local = threading.local()


# ---------------------------------------------------------------------------
# The process-wide instance and the hook seams
# ---------------------------------------------------------------------------

_GLOBAL: "Sanitizer | None" = None
_FORK_HOOKED = False


def enabled() -> bool:
    """Whether the process-wide sanitizer is installed."""
    return _GLOBAL is not None


def install(sanitizer: "Sanitizer | None" = None) -> Sanitizer:
    """Install the process-wide sanitizer (idempotent) and its watchers."""
    global _GLOBAL, _FORK_HOOKED
    if _GLOBAL is not None:
        return _GLOBAL
    _GLOBAL = sanitizer if sanitizer is not None else Sanitizer(name="global")
    _GLOBAL.install_watchers()
    if not _FORK_HOOKED and hasattr(os, "register_at_fork"):
        _FORK_HOOKED = True
        os.register_at_fork(after_in_child=_reset_after_fork)
    return _GLOBAL


def uninstall() -> None:
    """Remove the process-wide sanitizer and restore the patched mutators."""
    global _GLOBAL
    if _GLOBAL is not None:
        _GLOBAL.uninstall_watchers()
        _GLOBAL = None


def _reset_after_fork() -> None:
    if _GLOBAL is not None:
        _GLOBAL.reset_runtime()


def make_lock(name: str = "lock"):
    """A ``threading.Lock`` — sanitized when the sanitizer is installed."""
    return _GLOBAL.make_lock(name) if _GLOBAL is not None else threading.Lock()


def make_rlock(name: str = "lock"):
    """A ``threading.RLock`` — sanitized when the sanitizer is installed."""
    return _GLOBAL.make_rlock(name) if _GLOBAL is not None else threading.RLock()


def task_span():
    """Context manager marking one concurrently-running task (no-op when
    the sanitizer is off); the DAG scheduler and thread backend open one
    around every body/task they run."""
    return _GLOBAL.task_span() if _GLOBAL is not None else _NULL_SPAN


def map_boundary(label: str = "map"):
    """Context manager marking a blocking ``Backend.map``-shaped dispatch
    on the calling thread (no-op when the sanitizer is off)."""
    return _GLOBAL.map_boundary(label) if _GLOBAL is not None else _NULL_SPAN


def sanitize_report() -> dict:
    """The machine-readable end-of-run report of the global sanitizer."""
    if _GLOBAL is None:
        return {"enabled": False, "findings": []}
    return _GLOBAL.report()


def _write_report_at_exit() -> None:
    path = repro_env.REPRO_SANITIZE_REPORT.get()
    if _GLOBAL is None or path is None:
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(sanitize_report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:  # pragma: no cover - report path unwritable
        pass


atexit.register(_write_report_at_exit)

if repro_env.REPRO_SANITIZE.get():
    install()
