"""The AST lint engine: findings, rule protocol, file walking, suppression.

The engine is deliberately small: a :class:`Rule` receives one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects; the
engine walks the requested paths, parses each ``*.py`` once, runs every
registered rule over it, and applies the two suppression layers —

* **inline allows** — a ``# repro-analysis: allow=REP-X123 <reason>``
  comment on the offending line waives that rule there forever (used for
  deliberate, reviewed exceptions such as the TCP handshake secret);
* **the baseline** (:mod:`repro.analysis.baseline`) — a checked-in list of
  accepted pre-existing findings, so turning a new rule on does not block
  CI until every historical hit is fixed.

Rules live in :mod:`repro.analysis.rules`; the command line in
:mod:`repro.analysis.__main__`.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

#: Finding severities, in increasing order of concern.  Both gate CI — the
#: split only signals how directly a finding can corrupt a golden artefact.
SEVERITIES = ("warning", "error")

#: Package directories whose modules produce (or key) golden artefacts;
#: the determinism rule family applies only inside them.  Matched on path
#: segments, so fixtures under ``tmp/src/repro/core/`` scope identically.
GOLDEN_PACKAGES = (
    ("repro", "core"),
    ("repro", "exec"),
    ("repro", "render"),
    # The compiled kernel layer is already covered by ("repro", "render"),
    # but it is listed explicitly: kernels are the tightest golden modules
    # in the tree (their outputs are pinned bit-for-bit across backends)
    # and must stay in scope even if the render package is ever split.
    ("repro", "render", "kernels"),
    ("repro", "baking"),
    # Likewise covered by ("repro", "exec") but pinned explicitly: the DAG
    # scheduler's artifact mapping and the cost model's fitted coefficients
    # both key golden parity tiers (bit-identical reports for any worker
    # count; same trajectories -> same fit -> same shard plan) and must
    # stay in scope even if the exec package is ever split.
    ("repro", "exec", "dag.py"),
    ("repro", "exec", "costmodel.py"),
)

#: Inline suppression: ``# repro-analysis: allow=REP-D101 reason...`` or
#: ``allow=REP-D101,REP-E401``.  Trailing comments waive the same line; a
#: comment-only line waives the line that follows it.
_ALLOW_RE = re.compile(r"#\s*repro-analysis:\s*allow=([A-Z0-9,\-]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class Rule:
    """One named invariant, checked per module.

    Subclasses set ``rule_id`` (stable, never reused), ``title`` and
    ``severity``, and implement :meth:`check` to yield findings.  Rules
    must not mutate the context.
    """

    rule_id: str = "REP-0000"
    title: str = ""
    severity: str = "error"

    def check(self, module: "ModuleContext"):
        raise NotImplementedError

    def finding(self, module: "ModuleContext", node, message: str) -> Finding:
        """A finding of this rule at an AST node's location."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


@dataclass
class ModuleContext:
    """One parsed module plus the location facts rules key on."""

    path: str  # normalised to forward slashes, as given on the CLI
    source: str
    tree: ast.Module
    #: line number -> set of rule ids waived by an inline allow comment
    allows: dict = field(default_factory=dict)

    @property
    def parts(self) -> tuple:
        return tuple(part for part in self.path.split("/") if part)

    def _has_package(self, package: tuple) -> bool:
        parts = self.parts
        span = len(package)
        return any(
            parts[i : i + span] == package
            for i in range(len(parts) - span + 1)
        )

    @property
    def in_golden_scope(self) -> bool:
        """Whether this module belongs to a golden-artefact package."""
        return any(self._has_package(pkg) for pkg in GOLDEN_PACKAGES)

    @property
    def is_env_registry(self) -> bool:
        """Whether this is ``repro/config/env.py`` — the one module allowed
        to read ``os.environ``."""
        return self._has_package(("repro", "config")) and self.parts[-1] == "env.py"

    def allowed(self, finding: Finding) -> bool:
        return finding.rule in self.allows.get(finding.line, ())


def _parse_allows(source: str) -> dict:
    """Map line number -> rule ids waived by inline allow comments."""
    allows: dict = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            rules = {r for r in match.group(1).split(",") if r}
            line = token.start[0]
            allows.setdefault(line, set()).update(rules)
            # A comment-only line waives the statement below it (multi-line
            # allow blocks chain naturally: each line waives the next).
            prefix = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
            if not prefix.strip():
                allows.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenizeError:  # pragma: no cover - unparseable comments
        pass
    return allows


def load_module(path: str, source: "str | None" = None) -> "ModuleContext | None":
    """Parse one file into a :class:`ModuleContext` (``None`` on syntax error).

    Unparseable files are skipped rather than reported: the interpreter and
    the test tier already police syntax, and the linter must stay usable on
    trees with in-progress files.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    return ModuleContext(
        path=path.replace(os.sep, "/"),
        source=source,
        tree=tree,
        allows=_parse_allows(source),
    )


def iter_python_files(paths) -> list:
    """Every ``*.py`` file under the given files/directories, sorted,
    skipping hidden directories and ``__pycache__``."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(set(found))


@dataclass
class AnalysisResult:
    """Everything one lint run produced, before and after suppression."""

    findings: list = field(default_factory=list)  # gating (new) findings
    baselined: list = field(default_factory=list)  # matched baseline entries
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self, rules) -> dict:
        return {
            "version": 1,
            "rules": [
                {
                    "id": rule.rule_id,
                    "title": rule.title,
                    "severity": rule.severity,
                }
                for rule in rules
            ],
            "summary": {
                "files": self.files_checked,
                "new": len(self.findings),
                "baselined": len(self.baselined),
            },
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
        }


def analyze_module(module: ModuleContext, rules) -> list:
    """All non-inline-suppressed findings of ``rules`` against one module."""
    findings = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.allowed(finding):
                findings.append(finding)
    return sorted(findings)


def analyze_paths(paths, rules, baseline=None) -> AnalysisResult:
    """Lint every Python file under ``paths`` with ``rules``.

    Args:
        paths: files and/or directories.
        rules: rule instances to run.
        baseline: optional :class:`repro.analysis.baseline.Baseline`;
            matched findings are reported separately and do not gate.
    """
    result = AnalysisResult()
    for file_path in iter_python_files(paths):
        module = load_module(file_path)
        if module is None:
            continue
        result.files_checked += 1
        for finding in analyze_module(module, rules):
            if baseline is not None and baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort()
    result.baselined.sort()
    return result
