"""The AST lint engine: findings, rule protocol, file walking, suppression.

The engine is deliberately small: a :class:`Rule` receives one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects; the
engine walks the requested paths, parses each ``*.py`` once, runs every
registered rule over it, and applies the two suppression layers —

* **inline allows** — a ``# repro-analysis: allow=REP-X123 <reason>``
  comment on the offending line waives that rule there forever (used for
  deliberate, reviewed exceptions such as the TCP handshake secret);
* **the baseline** (:mod:`repro.analysis.baseline`) — a checked-in list of
  accepted pre-existing findings, so turning a new rule on does not block
  CI until every historical hit is fixed.

Rules live in :mod:`repro.analysis.rules`; the command line in
:mod:`repro.analysis.__main__`.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

#: Finding severities, in increasing order of concern.  Both gate CI — the
#: split only signals how directly a finding can corrupt a golden artefact.
SEVERITIES = ("warning", "error")

#: Package directories whose modules produce (or key) golden artefacts;
#: the determinism rule family applies only inside them.  Matched on path
#: segments, so fixtures under ``tmp/src/repro/core/`` scope identically.
GOLDEN_PACKAGES = (
    ("repro", "core"),
    ("repro", "exec"),
    ("repro", "render"),
    # The compiled kernel layer is already covered by ("repro", "render"),
    # but it is listed explicitly: kernels are the tightest golden modules
    # in the tree (their outputs are pinned bit-for-bit across backends)
    # and must stay in scope even if the render package is ever split.
    ("repro", "render", "kernels"),
    ("repro", "baking"),
    # Likewise covered by ("repro", "exec") but pinned explicitly: the DAG
    # scheduler's artifact mapping and the cost model's fitted coefficients
    # both key golden parity tiers (bit-identical reports for any worker
    # count; same trajectories -> same fit -> same shard plan) and must
    # stay in scope even if the exec package is ever split.
    ("repro", "exec", "dag.py"),
    ("repro", "exec", "costmodel.py"),
    # The frame-protocol modules, pinned for the same reason: the v2 array
    # plane carries every golden map's payload bytes (segment framing,
    # adoption, pooling), and bit-identity across {v1, v2} x transports is
    # itself a pinned tier — these must stay in scope even if the exec
    # package is ever split.
    ("repro", "exec", "transport.py"),
    ("repro", "exec", "arrayplane.py"),
)

#: Inline suppression: a comment *starting* with the directive — trailing
#: comments waive the same line; a comment-only line waives the line that
#: follows it.  Anchored so prose merely quoting the syntax (like this
#: doc comment) is not parsed as a live waiver.
_ALLOW_RE = re.compile(r"^#\s*repro-analysis:\s*allow=([A-Z0-9,\-]+)\s*(.*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class Rule:
    """One named invariant, checked per module.

    Subclasses set ``rule_id`` (stable, never reused), ``title`` and
    ``severity``, and implement :meth:`check` to yield findings.  Rules
    must not mutate the context.
    """

    rule_id: str = "REP-0000"
    title: str = ""
    severity: str = "error"

    def check(self, module: "ModuleContext"):
        raise NotImplementedError

    def finding(self, module: "ModuleContext", node, message: str) -> Finding:
        """A finding of this rule at an AST node's location."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """One invariant checked over the *whole* module set at once.

    Interprocedural rules (the REP-F2xx reachability family, REP-G5xx)
    need every parsed module — a hazard one call deep in another file is
    invisible per module.  Subclasses implement :meth:`check_project`
    over the full context list; :meth:`check` is a no-op so a project
    rule is harmless when handed to the per-module driver.
    """

    def check(self, module: "ModuleContext"):
        return ()

    def check_project(self, modules):
        raise NotImplementedError


@dataclass
class Waiver:
    """One inline ``# repro-analysis: allow=...`` comment.

    ``covered_lines`` holds every line the comment waives (its own line,
    plus the following line for comment-only lines); ``suppressed`` counts
    the findings it actually absorbed in the current run — a waiver that
    suppresses nothing is stale (rule ``REP-W001``).
    """

    path: str
    line: int
    rules: frozenset
    covered_lines: tuple
    reason: str = ""
    suppressed: int = 0


@dataclass
class ModuleContext:
    """One parsed module plus the location facts rules key on."""

    path: str  # normalised to forward slashes, as given on the CLI
    source: str
    tree: ast.Module
    #: line number -> set of rule ids waived by an inline allow comment
    allows: dict = field(default_factory=dict)
    #: the :class:`Waiver` records behind ``allows``, in source order
    waivers: list = field(default_factory=list)

    @property
    def parts(self) -> tuple:
        return tuple(part for part in self.path.split("/") if part)

    def _has_package(self, package: tuple) -> bool:
        parts = self.parts
        span = len(package)
        return any(
            parts[i : i + span] == package
            for i in range(len(parts) - span + 1)
        )

    @property
    def in_golden_scope(self) -> bool:
        """Whether this module belongs to a golden-artefact package."""
        return any(self._has_package(pkg) for pkg in GOLDEN_PACKAGES)

    @property
    def is_env_registry(self) -> bool:
        """Whether this is ``repro/config/env.py`` — the one module allowed
        to read ``os.environ``."""
        return self._has_package(("repro", "config")) and self.parts[-1] == "env.py"

    def allowed(self, finding: Finding) -> bool:
        """Whether an inline allow waives ``finding`` — and, if so, credit
        the covering waiver(s) so stale-waiver detection sees the use."""
        if finding.rule not in self.allows.get(finding.line, ()):
            return False
        for waiver in self.waivers:
            if finding.line in waiver.covered_lines and finding.rule in waiver.rules:
                waiver.suppressed += 1
        return True


def _parse_allows(path: str, source: str) -> tuple:
    """``(line -> waived rule ids, [Waiver, ...])`` for one module source."""
    allows: dict = {}
    waivers: list = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            rules = {r for r in match.group(1).split(",") if r}
            line = token.start[0]
            covered = [line]
            allows.setdefault(line, set()).update(rules)
            # A comment-only line waives the statement below it (multi-line
            # allow blocks chain naturally: each line waives the next).
            prefix = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
            if not prefix.strip():
                allows.setdefault(line + 1, set()).update(rules)
                covered.append(line + 1)
            waivers.append(Waiver(
                path=path,
                line=line,
                rules=frozenset(rules),
                covered_lines=tuple(covered),
                reason=match.group(2).strip(),
            ))
    except tokenize.TokenizeError:  # pragma: no cover - unparseable comments
        pass
    return allows, waivers


def load_module(path: str, source: "str | None" = None) -> "ModuleContext | None":
    """Parse one file into a :class:`ModuleContext` (``None`` on syntax error).

    Unparseable files are skipped rather than reported: the interpreter and
    the test tier already police syntax, and the linter must stay usable on
    trees with in-progress files.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    normalised = path.replace(os.sep, "/")
    allows, waivers = _parse_allows(normalised, source)
    return ModuleContext(
        path=normalised,
        source=source,
        tree=tree,
        allows=allows,
        waivers=waivers,
    )


def iter_python_files(paths) -> list:
    """Every ``*.py`` file under the given files/directories, sorted,
    skipping hidden directories and ``__pycache__``."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(set(found))


@dataclass
class AnalysisResult:
    """Everything one lint run produced, before and after suppression."""

    findings: list = field(default_factory=list)  # gating (new) findings
    baselined: list = field(default_factory=list)  # matched baseline entries
    files_checked: int = 0
    #: every inline :class:`Waiver` seen, in (path, line) order, with its
    #: post-run suppression count (the ``--waivers`` audit reads this)
    waivers: list = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self, rules) -> dict:
        return {
            "version": 1,
            "rules": [
                {
                    "id": rule.rule_id,
                    "title": rule.title,
                    "severity": rule.severity,
                }
                for rule in rules
            ],
            "summary": {
                "files": self.files_checked,
                "new": len(self.findings),
                "baselined": len(self.baselined),
            },
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
        }


def analyze_module(module: ModuleContext, rules) -> list:
    """All non-inline-suppressed findings of ``rules`` against one module."""
    findings = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.allowed(finding):
                findings.append(finding)
    return sorted(findings)


def analyze_paths(paths, rules, baseline=None) -> AnalysisResult:
    """Lint every Python file under ``paths`` with ``rules``.

    Per-module rules run first over each file; :class:`ProjectRule`
    instances then run once over the whole module set (in catalog order,
    so a rule that keys on the suppression stats of the others — the
    stale-waiver audit — lists itself last).

    Args:
        paths: files and/or directories.
        rules: rule instances to run.
        baseline: optional :class:`repro.analysis.baseline.Baseline`;
            matched findings are reported separately and do not gate.
    """
    result = AnalysisResult()
    module_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    modules = []
    for file_path in iter_python_files(paths):
        module = load_module(file_path)
        if module is None:
            continue
        modules.append(module)
    result.files_checked = len(modules)

    def admit(finding):
        if baseline is not None and baseline.matches(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    for module in modules:
        for finding in analyze_module(module, module_rules):
            admit(finding)
    by_path = {module.path: module for module in modules}
    for rule in project_rules:
        for finding in sorted(rule.check_project(modules)):
            module = by_path.get(finding.path)
            if module is None or not module.allowed(finding):
                admit(finding)
    for module in modules:
        result.waivers.extend(module.waivers)
    result.findings.sort()
    result.baselined.sort()
    return result
