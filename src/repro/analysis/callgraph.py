"""An approximate project-wide call graph over parsed modules.

The per-module rules (:mod:`repro.analysis.rules`) see one file at a
time, so a hazard one call deep — a helper that reads the wall clock,
called by a task shipped to ``Backend.map`` — is invisible to them.
This module builds the interprocedural layer those rules lack:

* :class:`ProjectIndex` — every function and class in the module set,
  keyed by qualified name (``"repro.core.pipeline:_bake_geometry_task"``,
  ``"repro.utils.lru:LockedLRU.get"``), plus per-module import-alias
  maps.
* :class:`CallGraph` — the reference graph.  An edge ``f -> g`` exists
  when ``f``'s body *references* ``g``: calls it directly, calls it
  through a module alias, calls ``self.g()`` inside ``g``'s class, calls
  a method on a local constructed from a known class, defines ``g`` as a
  nested function, or merely loads ``g``'s name (passing a callable
  along counts — that is exactly how tasks reach workers).  The graph is
  deliberately over-approximate: a missing edge hides a real hazard, a
  spurious one costs a waiver with a reason.
* **Scopes** — :func:`worker_shipped_scope` closes over every callable
  passed to ``Backend.map(...)`` / ``WorkerHost.run(...)`` (including
  factory calls in task position: the factory and everything it defines
  are shipped); :func:`concurrent_scope` additionally closes over
  ``DagNode`` bodies, since the stage-DAG scheduler and the thread
  backend run those concurrently in one process.

Reachability is reported with its witness chain (``root -> a -> b``) so
a finding names *how* the hazard is reachable, not just that it is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def dotted_name(node) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None`` (local copy:
    :mod:`repro.analysis.rules` imports this module, not the reverse)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for_path(path: str) -> str:
    """The dotted module name a repo path denotes.

    ``src/repro/exec/dag.py`` -> ``repro.exec.dag``; paths outside a
    ``src`` root (``tests/test_x.py``) keep their full dotted form.  The
    *last* ``src`` segment wins so fixture trees under ``tmp/src/...``
    resolve like the real tree.
    """
    parts = [part for part in path.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function (or method, or nested def, or lambda) in the index."""

    qualname: str
    module: "object"  # ModuleContext
    node: "object"    # ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    class_name: "str | None" = None


@dataclass
class ProjectIndex:
    """Name-resolution facts for the whole module set."""

    #: dotted module name -> ModuleContext
    modules: dict = field(default_factory=dict)
    #: qualified function name -> FunctionInfo
    functions: dict = field(default_factory=dict)
    #: "module:Class" -> {method name -> qualified name}
    classes: dict = field(default_factory=dict)
    #: dotted module name -> {local alias -> dotted target}
    imports: dict = field(default_factory=dict)


def _record_imports(module_name: str, tree, aliases: dict) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _index_function(index, module, module_name, node, class_name, prefix):
    local = f"{prefix}.{node.name}" if prefix else node.name
    qualname = f"{module_name}:{class_name + '.' if class_name else ''}{local}"
    index.functions[qualname] = FunctionInfo(
        qualname=qualname, module=module, node=node, class_name=class_name,
    )
    for child in node.body:
        _index_statement(index, module, module_name, child, class_name, local)
    return qualname


def _index_statement(index, module, module_name, node, class_name, prefix):
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        _index_function(index, module, module_name, node, class_name, prefix)
    elif isinstance(node, ast.ClassDef) and class_name is None and not prefix:
        class_key = f"{module_name}:{node.name}"
        methods = index.classes.setdefault(class_key, {})
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = _index_function(
                    index, module, module_name, child, node.name, "",
                )
                methods[child.name] = qualname


def build_index(modules) -> ProjectIndex:
    """Index every module, class and function in the context list."""
    index = ProjectIndex()
    for module in modules:
        module_name = module_name_for_path(module.path)
        index.modules[module_name] = module
        aliases = index.imports.setdefault(module_name, {})
        _record_imports(module_name, module.tree, aliases)
        for node in module.tree.body:
            _index_statement(index, module, module_name, node, None, "")
    return index


class _Resolver:
    """Name resolution inside one function body."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo):
        self.index = index
        self.info = info
        self.module_name = module_name_for_path(info.module.path)
        self.aliases = index.imports.get(self.module_name, {})
        #: local variable -> "module:Class" for vars bound to constructors
        #: (enclosing functions' bindings inherited, own bindings win —
        #: closures read the factory's locals)
        self.instances: dict = {}
        base = info.qualname.rpartition(".")[0]
        while ":" in base:
            parent = index.functions.get(base)
            if parent is not None:
                self._collect_instances(parent)
            base = base.rpartition(".")[0]
        self._collect_instances(info)

    def _collect_instances(self, info: FunctionInfo) -> None:
        own_class = (
            f"{self.module_name}:{info.class_name}" if info.class_name else None
        )
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            class_key = None
            if isinstance(node.value, ast.Call):
                class_key = self._resolve_class(dotted_name(node.value.func))
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and own_class in self.index.classes
            ):
                class_key = own_class  # `pipeline = self` aliases
            if class_key is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.instances[target.id] = class_key

    def _resolve_class(self, name) -> "str | None":
        if not name:
            return None
        head, _, tail = name.partition(".")
        target = self.aliases.get(head)
        if target is not None:
            name = f"{target}.{tail}" if tail else target
        if ":" not in name:
            local = f"{self.module_name}:{name}"
            if local in self.index.classes:
                return local
            dotted_module, _, attr = name.rpartition(".")
            candidate = f"{dotted_module}:{attr}"
            if candidate in self.index.classes:
                return candidate
        return None

    def resolve(self, expr) -> "str | None":
        """The qualified function name an expression denotes, or None."""
        name = dotted_name(expr)
        if name is None:
            return None
        parts = name.split(".")
        # self.method() inside a class
        if parts[0] == "self" and len(parts) == 2 and self.info.class_name:
            class_key = f"{self.module_name}:{self.info.class_name}"
            return self.index.classes.get(class_key, {}).get(parts[1])
        # instance.method() for a local bound to a known constructor
        if len(parts) == 2 and parts[0] in self.instances:
            class_key = self.instances[parts[0]]
            return self.index.classes.get(class_key, {}).get(parts[1])
        # a bare name may denote a nested def in an enclosing scope
        if len(parts) == 1 and parts[0] not in self.aliases:
            base = self.info.qualname
            while ":" in base:
                candidate = f"{base}.{parts[0]}"
                if candidate in self.index.functions:
                    return candidate
                prefix = base.rpartition(".")[0]
                base = prefix if ":" in prefix else base.split(":", 1)[0]
        # a plain or dotted name, resolved through the import aliases
        head, tail = parts[0], parts[1:]
        target = self.aliases.get(head)
        if target is not None:
            parts = target.split(".") + tail
        candidates = []
        if len(parts) == 1:
            candidates.append(f"{self.module_name}:{parts[0]}")
        for split in range(len(parts) - 1, 0, -1):
            candidates.append(
                ".".join(parts[:split]) + ":" + ".".join(parts[split:])
            )
        for candidate in candidates:
            if candidate in self.index.functions:
                return candidate
            # ClassName.method / imported-class method references
            class_key, _, method = candidate.rpartition(".")
            hit = self.index.classes.get(class_key, {}).get(method)
            if hit is not None:
                return hit
        # ClassName.method where ClassName is local or import-aliased
        if len(parts) >= 2:
            class_key = self._resolve_class(".".join(name.split(".")[:-1]))
            if class_key is not None:
                hit = self.index.classes.get(class_key, {}).get(parts[-1])
                if hit is not None:
                    return hit
        # constructing a known class reaches its __init__
        class_key = self._resolve_class(name)
        if class_key is not None:
            return self.index.classes.get(class_key, {}).get("__init__")
        return None

    def resolve_call(self, call) -> "str | None":
        """Like :meth:`resolve` on ``call.func``, plus method calls on a
        constructor result (``ProfileFitter(cs).fit(...)``)."""
        target = self.resolve(call.func)
        if target is not None:
            return target
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            class_key = self._resolve_class(dotted_name(func.value.func))
            if class_key is not None:
                return self.index.classes.get(class_key, {}).get(func.attr)
        return None


@dataclass
class CallGraph:
    """The reference graph plus the scope-entry sets found while building."""

    index: ProjectIndex
    #: qualified name -> sorted tuple of referenced qualified names
    edges: dict = field(default_factory=dict)
    #: qualified names of callables passed to Backend.map / WorkerHost.run
    shipped_entries: tuple = ()
    #: qualified names of callables passed as DagNode bodies
    dag_entries: tuple = ()

    def reachable(self, roots) -> dict:
        """Worklist closure from ``roots``: qualified name -> witness chain
        (the root-to-function reference path, as a tuple)."""
        chains: dict = {}
        frontier = []
        for root in sorted(set(roots)):
            if root in self.index.functions and root not in chains:
                chains[root] = (root,)
                frontier.append(root)
        while frontier:
            name = frontier.pop(0)
            for callee in self.edges.get(name, ()):
                if callee not in chains:
                    chains[callee] = chains[name] + (callee,)
                    frontier.append(callee)
        return chains


def _is_worker_dispatch(call) -> bool:
    """Mirror of the REP-F201 heuristic: ``<...backend>.map(task, ...)``
    and ``<...host>.run(task, ...)`` ship their first argument."""
    func = call.func
    if not isinstance(func, ast.Attribute) or not call.args:
        return False
    receiver = (dotted_name(func.value) or "").lower()
    if func.attr == "map" and "backend" in receiver:
        return True
    return func.attr == "run" and "host" in receiver


def _dag_body_expr(call) -> "object | None":
    """The ``body=`` expression of a ``DagNode(...)`` construction."""
    callee = (dotted_name(call.func) or "").split(".")[-1]
    if callee != "DagNode":
        return None
    for keyword in call.keywords:
        if keyword.arg == "body":
            return keyword.value
    if len(call.args) >= 4:  # DagNode(name, stage, scene, body, ...)
        return call.args[3]
    return None


def _entry_targets(resolver, expr) -> list:
    """Qualified names an entry expression (task argument) denotes.

    A factory call in task position (``self._sharded_fit_task(ds)``)
    promotes the factory itself: whatever it defines and returns is
    shipped, and the closure already has edges to its nested defs.
    """
    if isinstance(expr, ast.Call):
        expr = expr.func
    target = resolver.resolve(expr)
    return [target] if target is not None else []


def build_call_graph(modules) -> CallGraph:
    """The reference graph over every function in the context list."""
    index = build_index(modules)
    graph = CallGraph(index=index)
    shipped, dag_bodies = set(), set()
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        resolver = _Resolver(index, info)
        callees = set()
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                # defining a nested function references it
                for candidate, candidate_info in index.functions.items():
                    if candidate_info.node is node:
                        callees.add(candidate)
                        break
                continue
            if isinstance(node, ast.Call):
                target = resolver.resolve_call(node)
                if target is not None:
                    callees.add(target)
                if _is_worker_dispatch(node):
                    shipped.update(_entry_targets(resolver, node.args[0]))
                body = _dag_body_expr(node)
                if body is not None:
                    dag_bodies.update(_entry_targets(resolver, body))
            elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                # a bare reference counts: passing a callable along is how
                # tasks travel to dispatch sites in other functions
                target = resolver.resolve(node)
                if target is not None and target != qualname:
                    callees.add(target)
        callees.discard(qualname)
        graph.edges[qualname] = tuple(sorted(callees))
    graph.shipped_entries = tuple(sorted(shipped))
    graph.dag_entries = tuple(sorted(dag_bodies))
    return graph


def worker_shipped_scope(graph: CallGraph) -> dict:
    """Qualified name -> witness chain, for every function transitively
    reachable from a callable shipped to ``Backend.map``/``WorkerHost.run``."""
    return graph.reachable(graph.shipped_entries)


def concurrent_scope(graph: CallGraph) -> dict:
    """Qualified name -> witness chain, for every function that can run
    concurrently in one process: the worker-shipped closure (thread
    backend) unioned with the ``DagNode`` body closure (stage-DAG pool)."""
    return graph.reachable(graph.shipped_entries + graph.dag_entries)


def format_chain(chain) -> str:
    """``a -> b -> c`` rendering of a witness chain, short names only."""
    return " -> ".join(name.split(":", 1)[1] for name in chain)
