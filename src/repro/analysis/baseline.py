"""The checked-in baseline of accepted pre-existing findings.

Turning a new rule on must not block CI until every historical hit is
fixed: hits that are triaged as "accepted for now" are recorded here —
one entry per finding with a mandatory human reason — and stop gating.
Entries match on ``(rule, path, message)`` but deliberately **not** on
line numbers, so unrelated edits to a file cannot invalidate them; a
baselined finding disappears from the file the moment the code is fixed
(``--write-baseline`` prunes it) and can never hide a *new* finding with
a different message or in a different file.

Format (``.analysis-baseline.json`` at the repository root)::

    {"version": 1,
     "entries": [{"rule": "REP-D105", "path": "src/...", "message": "...",
                  "reason": "why this is accepted"}]}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: Default baseline location, relative to the invocation directory.
DEFAULT_BASELINE_NAME = ".analysis-baseline.json"

FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    reason: str = ""

    def key(self) -> tuple:
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """A set of accepted findings, matched by ``(rule, path, message)``."""

    entries: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._keys = {entry.key() for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding) -> bool:
        return (finding.rule, finding.path, finding.message) in self._keys

    @classmethod
    def from_findings(cls, findings, reason: str = "") -> "Baseline":
        """A baseline accepting exactly the given findings."""
        seen, entries = set(), []
        for finding in findings:
            entry = BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                message=finding.message,
                reason=reason,
            )
            if entry.key() not in seen:
                seen.add(entry.key())
                entries.append(entry)
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                message=str(entry["message"]),
                reason=str(entry.get("reason", "")),
            )
            for entry in payload.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [
                entry.as_dict()
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
